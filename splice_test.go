package mpa

// The splice≡rebuild equivalence suite: the correctness contract of the
// streaming ingest path (ingest.go) is that a framework grown month by
// month through Framework.Ingest is indistinguishable — report digests,
// ranking, dataset — from one built cold over the same records. The
// expected digests live in testdata/splice-golden.json so a behavior
// drift in either path fails loudly against a recorded truth, not just
// against the other path; refresh with
//
//	go test -run TestSpliceEquivalence -update .

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mpa/internal/ingest"
	"mpa/internal/osp"
	"mpa/internal/par"
)

var update = flag.Bool("update", false, "rewrite testdata/splice-golden.json")

// spliceParams is the suite's organization: mid-size, five months, so
// the replay covers three window extensions plus an intra-month split.
func spliceParams() osp.Params {
	p := osp.Small(21)
	p.Networks = 8
	p.End = p.Start.Add(4)
	return p
}

// spliceDigests reduces a framework to comparable fingerprints: every
// experiment report's digest, plus digests of the dataset cases and the
// MI ranking.
type spliceDigests struct {
	Reports map[string]string `json:"reports"`
	Dataset string            `json:"dataset"`
	Rank    string            `json:"rank"`
}

func digestsOf(t *testing.T, f *Framework, workers int) spliceDigests {
	t.Helper()
	d := spliceDigests{Reports: map[string]string{}}
	for _, r := range f.RunExperiments(nil, workers) {
		if !r.OK {
			t.Fatalf("experiment %s failed", r.ID)
		}
		d.Reports[r.ID] = r.Report.Digest()
	}
	jsonDigest := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%x", sha256.Sum256(b))
	}
	d.Dataset = jsonDigest(f.Dataset().Cases)
	d.Rank = jsonDigest(f.RankPracticesCached())
	return d
}

// roundTrip pushes an update through its wire encoding — the replayed
// bytes are exactly what a monitoring feed would POST.
func roundTrip(t *testing.T, u *ingest.Update) *IngestUpdate {
	t.Helper()
	b, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := ingest.Decode(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return u2
}

// buildIncremental truncates the organization to its first two months,
// builds a framework over that prefix, then ingests the remaining months
// one at a time — the final month split into two updates so the
// intra-month growth path is part of the replay.
func buildIncremental(t *testing.T, o *osp.OSP, cc CacheConfig) (*Framework, int) {
	t.Helper()
	p := o.Params
	cut := p.Start.Add(1)
	arch, log := ingest.Truncate(o.Archive, o.Tickets, cut)
	f, err := NewCached(o.Inventory, arch, log, p.Start, cut, cc)
	if err != nil {
		t.Fatal(err)
	}
	ingests := 0
	for m := cut.Next(); !p.End.Before(m); m = m.Next() {
		u := ingest.SliceMonth(o.Archive, o.Tickets, m)
		if m == p.End && len(u.Snapshots) > 1 && len(u.Tickets) > 0 {
			// Final month in two halves: first extends the window, the
			// second grows it in place.
			head := &ingest.Update{Month: u.Month, Snapshots: u.Snapshots[:len(u.Snapshots)/2]}
			tail := &ingest.Update{Month: u.Month, Snapshots: u.Snapshots[len(u.Snapshots)/2:], Tickets: u.Tickets}
			for _, part := range []*ingest.Update{head, tail} {
				res, err := f.Ingest(roundTrip(t, part))
				if err != nil {
					t.Fatalf("ingest %s (split): %v", m, err)
				}
				if want := part == head; res.NewMonth != want {
					t.Fatalf("ingest %s (split): NewMonth=%v, want %v", m, res.NewMonth, want)
				}
				ingests++
			}
			continue
		}
		res, err := f.Ingest(roundTrip(t, u))
		if err != nil {
			t.Fatalf("ingest %s: %v", m, err)
		}
		if !res.NewMonth || res.WindowEnd != m.String() {
			t.Fatalf("ingest %s: result %+v, want window extension to %s", m, res, m)
		}
		ingests++
	}
	return f, ingests
}

// TestSpliceEquivalence is the suite: golden-backed digests of the full
// rebuild, then incremental replicas at workers 1 and 8, cache off and
// on, every one byte-identical to the golden truth. It also pins that the
// incremental path never re-ran full inference: "inference" executes once
// at construction, each applied update adds one "ingest" stage.
func TestSpliceEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("splice equivalence suite is slow; skipped with -short")
	}
	o := osp.Generate(spliceParams())
	goldenPath := filepath.Join("testdata", "splice-golden.json")

	full, err := NewCached(o.Inventory, o.Archive, o.Tickets, o.Params.Start, o.Params.End, CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fullDigests := digestsOf(t, full, 1)

	if *update {
		b, err := json.MarshalIndent(fullDigests, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	var golden spliceDigests
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fullDigests, golden) {
		t.Fatalf("full rebuild drifted from golden digests (refresh with -update if intended):\n got %+v\nwant %+v",
			fullDigests, golden)
	}

	for _, workers := range []int{1, 8} {
		for _, cached := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d/cache=%v", workers, cached)
			t.Run(name, func(t *testing.T) {
				// NewCached and Ingest size their worker pools from the
				// process default; pin it for this replica.
				par.SetDefaultWorkers(workers)
				defer par.SetDefaultWorkers(0)
				inc, ingests := buildIncremental(t, o, CacheConfig{Enabled: cached})
				got := digestsOf(t, inc, workers)
				if !reflect.DeepEqual(got, golden) {
					for id, d := range got.Reports {
						if d != golden.Reports[id] {
							t.Errorf("report %s: digest %s, want %s", id, d, golden.Reports[id])
						}
					}
					if got.Dataset != golden.Dataset {
						t.Errorf("dataset digest %s, want %s", got.Dataset, golden.Dataset)
					}
					if got.Rank != golden.Rank {
						t.Errorf("rank digest %s, want %s", got.Rank, golden.Rank)
					}
					t.Fatal("incremental framework diverged from full rebuild")
				}
				if calls := inc.StageCalls("inference"); calls != 1 {
					t.Errorf("inference stage ran %d times, want exactly 1 (construction)", calls)
				}
				if calls := inc.StageCalls("ingest"); calls != ingests {
					t.Errorf("ingest stage ran %d times, want %d (one per applied update)", calls, ingests)
				}
			})
		}
	}
}

// TestIngestRejectsLeaveStateUntouched pins that a rejected update is
// free: wrong months, unknown devices, and malformed records all error
// without swapping the environment or bumping cache generations.
func TestIngestRejectsLeaveStateUntouched(t *testing.T) {
	p := spliceParams()
	p.Networks = 4
	o := osp.Generate(p)
	f, err := NewCached(o.Inventory, o.Archive, o.Tickets, p.Start, p.End, CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	envBefore := f.environment()
	rankBefore := f.RankPracticesCached()
	dev := o.Inventory.Networks[0].Devices[0].Name

	bad := []*IngestUpdate{
		// A month that does not extend the window.
		ingest.SliceMonth(o.Archive, o.Tickets, p.Start),
		// The right month, unknown device.
		{Month: p.End.Next().String(), Snapshots: []ingest.SnapshotEntry{
			{Device: "no-such-device", Time: p.End.Next().Start(), Login: "x", Text: "hostname x\n"}}},
		// A gap: two months past the window end.
		{Month: p.End.Add(2).String(), Snapshots: []ingest.SnapshotEntry{
			{Device: dev, Time: p.End.Add(2).Start(), Login: "x", Text: "hostname x\n"}}},
		// Empty update.
		{Month: p.End.Next().String()},
	}
	for i, u := range bad {
		if _, err := f.Ingest(u); err == nil {
			t.Fatalf("bad update %d accepted", i)
		}
	}
	if f.environment() != envBefore {
		t.Fatal("rejected update swapped the environment")
	}
	// The memoized rank must still be served from the same generation.
	stats := f.QueryCacheStats()
	rankAfter := f.RankPracticesCached()
	if &rankBefore[0] != &rankAfter[0] {
		t.Fatal("rejected update invalidated the warm rank memo")
	}
	if d := f.QueryCacheStats().MemHits - stats.MemHits; d != 1 {
		t.Fatalf("warm rank after rejects: %d cache hits, want 1", d)
	}
}

// TestIngestCacheInvalidationPrecision is the invalidation property
// test: after an ingest touching network set S, per-network warm queries
// must miss for every network in S and hit for every network outside it,
// while whole-organization memos (the ranking) miss exactly once — and
// full inference never re-runs.
func TestIngestCacheInvalidationPrecision(t *testing.T) {
	p := spliceParams()
	o := osp.Generate(p)
	f, err := NewCached(o.Inventory, o.Archive, o.Tickets, p.Start, p.End, CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := p.End
	networks := make([]string, 0, len(o.Inventory.Networks))
	for _, nw := range o.Inventory.Networks {
		networks = append(networks, nw.Name)
	}

	// Warm one per-network entry per network plus the global ranking.
	for _, n := range networks {
		if _, err := f.NetworkHealthCached(n, m); err != nil {
			t.Fatalf("warm %s: %v", n, err)
		}
	}
	f.RankPracticesCached()
	base := f.QueryCacheStats()

	// Re-query everything warm: all hits, no misses.
	for _, n := range networks {
		if _, err := f.NetworkHealthCached(n, m); err != nil {
			t.Fatal(err)
		}
	}
	f.RankPracticesCached()
	warm := f.QueryCacheStats()
	if d := warm.MemHits - base.MemHits; d != int64(len(networks)+1) {
		t.Fatalf("warm pass: %d hits, want %d", d, len(networks)+1)
	}
	if d := warm.MemMisses - base.MemMisses; d != 0 {
		t.Fatalf("warm pass: %d misses, want 0", d)
	}

	// Craft an intra-month update touching exactly two networks: one via
	// a snapshot (re-sent final config, so even the analysis is
	// unchanged — the invalidation must still fire), one via a ticket.
	snapNet, ticketNet := networks[0], networks[len(networks)-1]
	dev := o.Inventory.Networks[0].Devices[0].Name
	hist := o.Archive.Snapshots(dev)
	last := hist[len(hist)-1]
	u := &IngestUpdate{
		Month: m.String(),
		Snapshots: []ingest.SnapshotEntry{
			{Device: dev, Time: m.End().Add(-1), Login: "ops", Text: last.Text},
		},
		Tickets: []ingest.TicketEntry{
			{Network: ticketNet, Origin: "user-report", Opened: m.End().Add(-1)},
		},
	}
	res, err := f.Ingest(u)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{snapNet, ticketNet}; !reflect.DeepEqual(res.Networks, want) {
		t.Fatalf("touched networks %v, want %v", res.Networks, want)
	}
	touched := map[string]bool{snapNet: true, ticketNet: true}

	pre := f.QueryCacheStats()
	for _, n := range networks {
		nh, err := f.NetworkHealthCached(n, m)
		if err != nil {
			t.Fatal(err)
		}
		if n == ticketNet {
			// The new ticket must be visible in the recomputed entry.
			want := f.Tickets().HealthCount(n, m)
			if nh.Tickets != want {
				t.Fatalf("%s: cached tickets %d, want %d after ingest", n, nh.Tickets, want)
			}
		}
	}
	post := f.QueryCacheStats()
	// Untouched networks hit; touched networks miss. A cold memoized call
	// checks the cache twice (double-checked locking), so each touched
	// network contributes two miss counts.
	wantHits := int64(len(networks) - len(touched))
	wantMisses := int64(2 * len(touched))
	if d := post.MemHits - pre.MemHits; d != wantHits {
		t.Errorf("per-network queries after ingest: %d hits, want %d (untouched networks must stay warm)",
			d, wantHits)
	}
	if d := post.MemMisses - pre.MemMisses; d != wantMisses {
		t.Errorf("per-network queries after ingest: %d misses, want %d (touched networks must recompute)",
			d, wantMisses)
	}

	// The global ranking memo was invalidated exactly once.
	pre = f.QueryCacheStats()
	f.RankPracticesCached()
	f.RankPracticesCached()
	post = f.QueryCacheStats()
	if d := post.MemMisses - pre.MemMisses; d != 2 {
		t.Errorf("rank after ingest: %d misses, want 2 (one cold rebuild)", d)
	}
	if d := post.MemHits - pre.MemHits; d != 1 {
		t.Errorf("rank after ingest: %d hits, want 1", d)
	}

	// Precision's backstop: no full inference re-ran for any of this.
	if calls := f.StageCalls("inference"); calls != 1 {
		t.Errorf("inference stage ran %d times, want 1", calls)
	}
}
