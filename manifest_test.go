package mpa

import (
	"path/filepath"
	"testing"

	"mpa/internal/runinfo"
)

// smallManifestFramework builds a tiny framework and runs a few
// experiments so the manifest has stage rollups and report digests.
func smallManifestFramework(t *testing.T, seed uint64) *Framework {
	t.Helper()
	cfg := SmallConfig(seed)
	cfg.Networks = 12
	cfg.Cache = CacheConfig{Enabled: true} // the CLI default; registers cache.* counters
	f, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table2", "table3", "figure2"} {
		if _, ok := f.Experiment(id); !ok {
			t.Fatalf("experiment %s unknown", id)
		}
	}
	return f
}

func TestManifestContents(t *testing.T) {
	f := smallManifestFramework(t, 5)
	m := f.Manifest()
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Config.Seed != 5 || m.Config.Networks != 12 {
		t.Errorf("config not recorded: %+v", m.Config)
	}
	if m.TotalWallNS <= 0 {
		t.Errorf("total_wall_ns = %d, want > 0", m.TotalWallNS)
	}

	// The pipeline stages (generate, inference, dataset.build) and every
	// experiment run must appear as rollups with real durations.
	stages := map[string]runinfo.Stage{}
	for _, st := range m.Stages {
		stages[st.Name] = st
	}
	for _, want := range []string{
		"generate", "inference", "dataset.build",
		"experiment:table2", "experiment:table3", "experiment:figure2",
	} {
		st, ok := stages[want]
		if !ok {
			t.Errorf("stage %q missing from manifest", want)
			continue
		}
		if st.Calls < 1 || st.WallNS <= 0 {
			t.Errorf("stage %q rollup empty: %+v", want, st)
		}
	}
	if st := stages["generate"]; st.Counters["networks"] != 12 {
		t.Errorf("generate counters not rolled up: %+v", st.Counters)
	}

	// The registry snapshot must include the cache hit/miss counter
	// family.
	for _, name := range []string{"cache.practices.mem_hits", "cache.practices.mem_misses"} {
		if _, ok := m.Metrics.Counters[name]; !ok {
			t.Errorf("counter %q missing from the manifest metrics snapshot", name)
		}
	}

	if len(m.Reports) != 3 {
		t.Errorf("report digests = %d, want 3: %v", len(m.Reports), m.Reports)
	}
}

// TestManifestDigestsStable: two identical runs must produce
// byte-identical report digests (the manifest's diffability guarantee).
func TestManifestDigestsStable(t *testing.T) {
	a := smallManifestFramework(t, 5).Manifest()
	b := smallManifestFramework(t, 5).Manifest()
	if len(a.Reports) == 0 {
		t.Fatal("no report digests recorded")
	}
	for id, da := range a.Reports {
		if db := b.Reports[id]; da != db {
			t.Errorf("digest of %s differs across identical runs:\n  %s\n  %s", id, da, db)
		}
	}

	c := smallManifestFramework(t, 6).Manifest()
	same := 0
	for id, da := range a.Reports {
		if c.Reports[id] == da {
			same++
		}
	}
	if same == len(a.Reports) {
		t.Error("digests identical across different seeds — digest is not content-sensitive")
	}
}

func TestWriteManifest(t *testing.T) {
	f := smallManifestFramework(t, 7)
	path := filepath.Join(t.TempDir(), "run.json")
	if err := f.WriteManifest(path); err != nil {
		t.Fatal(err)
	}
	m, err := runinfo.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stages) < 4 {
		t.Errorf("written manifest has %d stages, want >= 4", len(m.Stages))
	}
	if m.Build.GoVersion == "" {
		t.Error("build info missing from written manifest")
	}
}
