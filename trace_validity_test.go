package mpa

import (
	"bytes"
	"encoding/json"
	"testing"

	"mpa/internal/obs"
)

// TestWriteTraceParallelValidity pins the trace-export contract under a
// fully parallel run (workers=8 across generation, inference, and the
// experiment fan-out): the output is well-formed Chrome trace-event
// JSON, every event is a complete ("X") event with sane timestamps, and
// sibling spans appear in monotone start-time order — the property
// Span.Start guarantees by timestamping under the parent's lock.
func TestWriteTraceParallelValidity(t *testing.T) {
	cfg := SmallConfig(17)
	cfg.Networks = 16
	cfg.Workers = 8
	f, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range f.RunExperiments([]string{"table2", "table3", "figure2", "figure3"}, 8) {
		if !res.OK {
			t.Fatalf("experiment %s failed", res.ID)
		}
	}

	var buf bytes.Buffer
	if err := f.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Ts    int64          `json:"ts"`
			Dur   int64          `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not well-formed JSON: %v", err)
	}
	if len(tf.TraceEvents) < 1+16+16+4 { // root + per-network generate + inference + experiments
		t.Fatalf("trace has %d events, want at least %d", len(tf.TraceEvents), 1+16+16+4)
	}
	if tf.TraceEvents[0].Name != "pipeline" || tf.TraceEvents[0].Ts != 0 {
		t.Errorf("first event = %q ts=%d, want the pipeline root at the origin",
			tf.TraceEvents[0].Name, tf.TraceEvents[0].Ts)
	}
	for i, ev := range tf.TraceEvents {
		if ev.Phase != "X" {
			t.Errorf("event %d (%s): phase %q, want X", i, ev.Name, ev.Phase)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %d (%s): negative ts/dur (%d, %d)", i, ev.Name, ev.Ts, ev.Dur)
		}
	}

	// Walk the span tree itself: children sorted by start time even
	// though 8 workers opened them concurrently, and no child starts
	// before its parent.
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		children := s.Children()
		for i, c := range children {
			if c.StartTime().Before(s.StartTime()) {
				t.Errorf("span %s starts before its parent %s", c.Name(), s.Name())
			}
			if i > 0 && c.StartTime().Before(children[i-1].StartTime()) {
				t.Errorf("span %s: children %q and %q out of start order",
					s.Name(), children[i-1].Name(), c.Name())
			}
			walk(c)
		}
	}
	walk(f.environment().Obs)
}
