// Package mpa is a management plane analytics framework: a full
// reproduction of "Management Plane Analytics" (Gember-Jacobson, Wu, Li,
// Akella, Mahajan — IMC 2015).
//
// MPA helps an organization that operates a collection of networks
// understand and improve its management plane. It infers management
// practices — design practices like hardware heterogeneity and routing
// structure, and operational practices like change frequency, typing, and
// automation — from three commonly available data sources: inventory
// records, device-configuration snapshots, and trouble-ticket logs. It
// then (i) identifies which practices have a statistical and causal
// relationship with network health, via mutual information and
// propensity-score-matched quasi-experiments, and (ii) learns predictive
// models of health from practices, handling the heavy healthy-network
// skew with oversampling and boosting.
//
// The simplest entry point is a synthetic organization:
//
//	f, err := mpa.NewSynthetic(mpa.SmallConfig(1))
//	top := f.RankPractices()[:5]          // strongest dependences
//	res, _ := f.AnalyzeCausal(top[0].Metric)
//	model, _ := f.TrainHealthModel(mpa.TwoClass)
//
// Organizations with their own data construct the three substrates
// (netmodel.Inventory, nms.Archive, ticketing.Log re-exported here) and
// call New.
package mpa

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mpa/internal/cache"
	"mpa/internal/dataset"
	"mpa/internal/experiments"
	"mpa/internal/ingest"
	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/nms"
	"mpa/internal/obs"
	"mpa/internal/osp"
	"mpa/internal/practices"
	"mpa/internal/qed"
	"mpa/internal/ticketing"
)

// Re-exported substrate types, so callers can assemble their own data
// sources and name every result type without reaching into internal
// packages.
type (
	// Month is a calendar month (UTC).
	Month = months.Month
	// Inventory is the organization's device/network inventory.
	Inventory = netmodel.Inventory
	// Network is one managed network.
	Network = netmodel.Network
	// Device is one inventory record.
	Device = netmodel.Device
	// Archive is the configuration-snapshot archive (NMS).
	Archive = nms.Archive
	// Snapshot is one archived device configuration.
	Snapshot = nms.Snapshot
	// TicketLog is the trouble-ticket history.
	TicketLog = ticketing.Log
	// Ticket is one trouble ticket.
	Ticket = ticketing.Ticket
	// Dataset is the network-month case matrix.
	Dataset = dataset.Dataset
	// Case is one network-month observation.
	Case = dataset.Case
	// Metrics maps practice-metric names to values.
	Metrics = practices.Metrics
	// CausalResult is a matched-design analysis of one practice.
	CausalResult = qed.Result
	// CausalPoint is one comparison point of a causal analysis.
	CausalPoint = qed.PointResult
	// Report is a rendered experiment result.
	Report = experiments.Report
	// SyntheticParams are the synthetic-OSP generator parameters.
	SyntheticParams = osp.Params
	// HealthWeights is the synthetic ground-truth health model.
	HealthWeights = osp.HealthWeights
	// CacheConfig parameterizes the content-addressed pipeline cache
	// (Config.Cache): an in-memory LRU tier plus an optional on-disk tier
	// (Dir) that lets warm re-runs skip all unchanged per-network work.
	// The zero value disables caching; caching never changes results.
	CacheConfig = cache.Config
	// CacheStats is a point-in-time snapshot of one cache's activity
	// (see Framework.QueryCacheStats).
	CacheStats = cache.Stats
	// IngestUpdate is one month of new snapshots and tickets in the
	// streaming wire format (see Framework.Ingest and internal/ingest).
	IngestUpdate = ingest.Update
	// IngestEvent is one server-sent event pushed to stream subscribers
	// after an applied update.
	IngestEvent = ingest.Event
)

// MetricNames lists the 28 practice metrics (paper Table 1).
var MetricNames = practices.MetricNames

// DisplayName returns the paper-style name of a practice metric.
func DisplayName(metric string) string { return practices.DisplayName(metric) }

// MetricCategory returns "design" or "operational" for a practice metric.
func MetricCategory(metric string) string { return practices.Category(metric) }

// Config parameterizes a synthetic organization.
type Config struct {
	// Seed drives all generation; identical seeds reproduce identical
	// organizations and analyses.
	Seed uint64
	// Networks is the number of networks (the paper's OSP has 850+).
	Networks int
	// Start and End bound the study window, inclusive.
	Start, End Month
	// MeanEventsPerMonth is the median of the per-network change-event
	// rate distribution.
	MeanEventsPerMonth float64
	// Health overrides the ground-truth health model (zero value = use
	// the calibrated defaults).
	Health *HealthWeights
	// Workers bounds the goroutines each pipeline stage (generation,
	// inference, cross-validation folds, forest trees, experiment runs)
	// may use. Zero or negative uses the process default — all CPUs, or
	// whatever par.SetDefaultWorkers / the CLIs' -workers flag set. Every
	// result is byte-identical at every worker count.
	Workers int
	// Cache configures content-addressed memoization of the pipeline's
	// pure stages (snapshot parsing, diffing, per-network inference, the
	// dataset build). The zero value disables it. Results are
	// byte-identical with the cache cold, warm, or disabled.
	Cache CacheConfig
}

// DefaultConfig returns the paper-scale configuration: 850 networks over
// the 17-month study window (Aug 2013 - Dec 2014).
func DefaultConfig(seed uint64) Config {
	p := osp.Default(seed)
	return Config{
		Seed:               p.Seed,
		Networks:           p.Networks,
		Start:              p.Start,
		End:                p.End,
		MeanEventsPerMonth: p.MeanEventsPerMonth,
	}
}

// SmallConfig returns a laptop-scale configuration suitable for tests,
// examples, and exploration.
func SmallConfig(seed uint64) Config {
	p := osp.Small(seed)
	return Config{
		Seed:               p.Seed,
		Networks:           p.Networks,
		Start:              p.Start,
		End:                p.End,
		MeanEventsPerMonth: p.MeanEventsPerMonth,
	}
}

// params converts a Config to generator parameters.
func (c Config) params() osp.Params {
	p := osp.Params{
		Seed:               c.Seed,
		Networks:           c.Networks,
		Start:              c.Start,
		End:                c.End,
		Health:             osp.DefaultHealthWeights(),
		MeanEventsPerMonth: c.MeanEventsPerMonth,
		Workers:            c.Workers,
	}
	if c.Health != nil {
		p.Health = *c.Health
	}
	if p.Networks <= 0 {
		p.Networks = 60
	}
	if p.MeanEventsPerMonth <= 0 {
		p.MeanEventsPerMonth = 6
	}
	var zero Month
	if p.Start == zero || p.End == zero || p.End.Before(p.Start) {
		p.Start, p.End = months.StudyStart, months.StudyEnd
	}
	return p
}

// Framework is an MPA instance bound to one organization's data.
//
// The bound state is swappable: Ingest (ingest.go) splices a new month
// of data into copies of the substrates and atomically replaces the
// environment pointer, so queries racing an update read either the old
// or the new state — never a torn mix.
type Framework struct {
	env atomic.Pointer[experiments.Env]
	// cfgMu guards cfg: Ingest advances cfg.End when the window grows
	// while Manifest reads the whole struct.
	cfgMu sync.Mutex
	cfg   Config // the run's settings, recorded in manifests
	// queries is the warm query layer (query.go): memoized rankings,
	// causal analyses, models, and reports for long-lived processes.
	queries queryState
	// ingestMu serializes updates; engine is the lazily-built incremental
	// inference engine reused across them (guarded by ingestMu).
	ingestMu sync.Mutex
	engine   *practices.Engine
	// hub fans applied updates out to stream subscribers.
	hub *ingest.Hub
}

// environment returns the framework's current immutable state.
func (f *Framework) environment() *experiments.Env { return f.env.Load() }

// config returns a snapshot of the run's settings.
func (f *Framework) config() Config {
	f.cfgMu.Lock()
	defer f.cfgMu.Unlock()
	return f.cfg
}

// newFramework wraps an Env and config in a Framework.
func newFramework(env *experiments.Env, cfg Config) *Framework {
	f := &Framework{cfg: cfg, hub: ingest.NewHub()}
	f.env.Store(env)
	return f
}

// NewSynthetic generates a synthetic organization and runs inference over
// it. Identical configs produce identical frameworks.
func NewSynthetic(cfg Config) (*Framework, error) {
	env, err := experiments.NewEnvCached(cfg.params(), cfg.Cache)
	if err != nil {
		return nil, err
	}
	return newFramework(env, cfg), nil
}

// New builds a framework over an organization's own data sources,
// inferring practices for every month in [start, end].
func New(inv *Inventory, arch *Archive, tickets *TicketLog, start, end Month) (*Framework, error) {
	return NewCached(inv, arch, tickets, start, end, CacheConfig{})
}

// NewCached is New with the content-addressed pipeline cache enabled per
// cc: with an on-disk tier configured, re-analyzing an organization whose
// data is largely unchanged (the common monitoring cadence) recomputes
// only the networks whose inputs actually changed.
func NewCached(inv *Inventory, arch *Archive, tickets *TicketLog, start, end Month, cc CacheConfig) (*Framework, error) {
	if inv == nil || arch == nil || tickets == nil {
		return nil, fmt.Errorf("mpa: nil data source")
	}
	if end.Before(start) {
		return nil, fmt.Errorf("mpa: end month %v precedes start %v", end, start)
	}
	root := obs.NewRoot("pipeline")
	engine := practices.NewEngine(inv, arch)
	engine.SetObs(root)
	engine.SetCache(cc)
	window := months.Range(start, end)
	analysis, err := engine.Analyze(window)
	if err != nil {
		return nil, err
	}
	upstream, haveKey := engine.AnalysisKey()
	env := &experiments.Env{
		Params: osp.Params{
			Start: start,
			End:   end,
		},
		OSP: &osp.OSP{
			Inventory: inv,
			Archive:   arch,
			Tickets:   tickets,
		},
		Analysis: analysis,
		Data:     dataset.BuildCached(analysis, tickets, root, cache.New("dataset", cc), upstream, haveKey),
		Obs:      root,
	}
	env.OSP.Params = env.Params
	f := newFramework(env, Config{
		Networks: len(inv.Networks),
		Start:    start,
		End:      end,
		Cache:    cc,
	})
	// Keep the engine warm: Ingest reuses its content-addressed caches,
	// so an incremental month pays only for genuinely new snapshots.
	f.engine = engine
	return f, nil
}

// Dataset returns the case matrix (one case per network-month).
func (f *Framework) Dataset() *Dataset { return f.environment().Data }

// Inventory returns the organization's inventory.
func (f *Framework) Inventory() *Inventory { return f.environment().OSP.Inventory }

// Tickets returns the trouble-ticket log.
func (f *Framework) Tickets() *TicketLog { return f.environment().OSP.Tickets }

// Window returns the study months.
func (f *Framework) Window() []Month { return f.environment().Window() }

// PracticeDependence is one practice's statistical dependence with
// network health.
type PracticeDependence struct {
	Metric string
	// MI is the average monthly mutual information with health, in bits.
	MI float64
}

// RankPractices returns every practice ordered by decreasing statistical
// dependence with network health (paper Table 3 generalized to all 28).
func (f *Framework) RankPractices() []PracticeDependence {
	entries := experiments.MIRanking(f.environment())
	out := make([]PracticeDependence, len(entries))
	for i, e := range entries {
		out[i] = PracticeDependence{Metric: e.Metric, MI: e.MI}
	}
	return out
}

// AnalyzeCausal runs the paper's matched-design quasi-experiment for one
// treatment practice, controlling for the remaining 27 practice metrics.
func (f *Framework) AnalyzeCausal(metric string) (*CausalResult, error) {
	env := f.environment()
	cfg := qed.DefaultConfig(practices.MetricNames)
	cfg.Obs = env.Obs
	return qed.Run(env.Data, metric, cfg)
}

// Experiment runs one of the paper's tables/figures by ID (see
// ExperimentIDs) and reports whether the ID was known.
func (f *Framework) Experiment(id string) (Report, bool) {
	return experiments.Run(f.environment(), id)
}

// ExperimentResult pairs an experiment ID with its outcome; OK is false
// for unknown IDs.
type ExperimentResult = experiments.RunResult

// RunExperiments executes the given experiments (nil = all, in paper
// order) on up to workers goroutines (0 = process default) and returns
// the results in input order. Reports are identical at any worker count.
func (f *Framework) RunExperiments(ids []string, workers int) []ExperimentResult {
	return experiments.RunAll(f.environment(), ids, workers)
}

// ExperimentIDs lists the reproducible tables and figures in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// StudyWindow returns the paper's 17-month window (Aug 2013 - Dec 2014).
func StudyWindow() (start, end Month) { return months.StudyStart, months.StudyEnd }

// MonthOf returns the Month containing t.
func MonthOf(t time.Time) Month { return months.Of(t) }
