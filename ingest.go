package mpa

// Streaming incremental ingest: Framework.Ingest splices one new month
// of snapshots and tickets into the loaded organization without a
// rebuild or restart. The update is validated first (a rejected update
// changes nothing), then applied copy-on-write: the archive and ticket
// log are cloned (records shared, histories re-sliced), inference runs
// only for the network-months whose inputs changed, the analysis map and
// dataset are re-assembled around the spliced rows, and the new
// environment is swapped in atomically. Queries racing an ingest read
// either the old or the new state, never a mix; the query memo layer is
// invalidated generationally (query.go) so untouched networks' entries
// stay warm.
//
// The correctness bar is byte-identity, not freshness: ingesting months
// 1..k one at a time must leave the framework in exactly the state a
// cold rebuild over months 1..k produces — same report digests, same
// rankings, same dataset — at any worker count, cache on or off
// (TestSpliceEquivalence).

import (
	"encoding/json"
	"fmt"
	"time"

	"mpa/internal/dataset"
	"mpa/internal/experiments"
	"mpa/internal/ingest"
	"mpa/internal/obs"
	"mpa/internal/osp"
	"mpa/internal/practices"
)

// ingestHist records end-to-end ingest latency in milliseconds.
var ingestHist = obs.GetHistogram("ingest.apply_ms",
	1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)

// rejectApply accounts one update that failed after validation: unlike a
// validation reject, apply work already ran, so the latency histogram
// must see it too or ingest.apply_ms silently undercounts failed
// applies.
func rejectApply(start time.Time) {
	obs.GetCounter("ingest.rejected").Add(1)
	ingestHist.Observe(float64(time.Since(start).Microseconds()) / 1000)
}

// IngestResult summarizes one applied update.
type IngestResult struct {
	// Month is the update's calendar month.
	Month Month `json:"-"`
	// MonthName is Month in wire form ("YYYY-MM").
	MonthName string `json:"month"`
	// NewMonth reports whether the update extended the study window (vs
	// growing the current final month in place).
	NewMonth bool `json:"new_month"`
	// WindowEnd is the study window's final month after the update.
	WindowEnd string `json:"window_end"`
	// Networks lists the touched networks, sorted — exactly the set
	// whose inference re-ran and whose query-cache entries invalidated.
	Networks  []string `json:"networks"`
	Snapshots int      `json:"snapshots"`
	Tickets   int      `json:"tickets"`
}

// Ingest validates and applies one month of new data to the warm
// framework. The update must carry the current final month (intra-month
// growth: only the touched networks' final month re-infers) or the month
// after it (window extension: every network gains the new month's row,
// but untouched networks only re-derive month-end design state through
// the warm parse cache — no new parsing or diffing). Updates are
// serialized; queries are never blocked by an in-flight ingest.
func (f *Framework) Ingest(u *IngestUpdate) (*IngestResult, error) {
	f.ingestMu.Lock()
	defer f.ingestMu.Unlock()
	start := time.Now()

	env := f.environment()
	sp := env.Obs.Start("ingest")
	defer sp.End()

	// Validate: compile the wire update against the inventory and the
	// current archive. Nothing is applied on error.
	vsp := sp.Start("validate")
	comp, err := u.Compile(env.OSP.Inventory, env.OSP.Archive)
	vsp.End()
	if err != nil {
		obs.GetCounter("ingest.rejected").Add(1)
		return nil, err
	}
	curEnd := env.Params.End
	newMonth := false
	switch comp.Month {
	case curEnd:
	case curEnd.Next():
		newMonth = true
	default:
		obs.GetCounter("ingest.rejected").Add(1)
		return nil, fmt.Errorf("mpa: update month %s does not extend window ending %s (want %s or %s)",
			comp.Month, curEnd, curEnd, curEnd.Next())
	}

	// Apply copy-on-write: clone the substrates and splice the new
	// records in. Readers of the current environment are unaffected —
	// clones share the immutable records and re-slice the histories.
	asp := sp.Start("apply")
	arch := env.OSP.Archive.Clone()
	for _, s := range comp.Snapshots {
		if err := arch.Record(s); err != nil {
			// Compile validated per-device monotonicity; reaching here is
			// an ingest bug, not bad input.
			asp.End()
			rejectApply(start)
			return nil, fmt.Errorf("mpa: splice failed: %w", err)
		}
	}
	tickets := env.OSP.Tickets.Clone()
	for i := range comp.Tickets {
		tickets.File(comp.Tickets[i])
	}
	asp.End()

	// Infer exactly the affected network-months with the warm engine.
	if f.engine == nil {
		f.engine = practices.NewEngine(env.OSP.Inventory, arch)
		f.engine.SetCache(f.cfg.Cache)
	}
	f.engine.SetArchive(arch)
	f.engine.SetWorkers(f.cfg.Workers)
	f.engine.SetObs(sp)
	var names []string
	if newMonth {
		// Every network gains a row for the new month; the untouched ones
		// carry their design state forward (their month has no changes).
		names = make([]string, 0, len(env.OSP.Inventory.Networks))
		for _, nw := range env.OSP.Inventory.Networks {
			names = append(names, nw.Name)
		}
	} else {
		names = comp.Networks
	}
	rows, err := f.engine.AnalyzeMonth(comp.Month, names)
	if err != nil {
		rejectApply(start)
		return nil, fmt.Errorf("mpa: incremental inference failed: %w", err)
	}

	// Splice: copy-on-write the analysis map (untouched networks share
	// their row slices), rebuild the dataset, and swap the environment.
	ssp := sp.Start("splice")
	analysis := make(map[string][]practices.MonthAnalysis, len(env.Analysis))
	for name, old := range env.Analysis {
		analysis[name] = old
	}
	for i, name := range names {
		old := analysis[name]
		if newMonth {
			grown := make([]practices.MonthAnalysis, len(old)+1)
			copy(grown, old)
			grown[len(old)] = rows[i]
			analysis[name] = grown
			continue
		}
		replaced := make([]practices.MonthAnalysis, len(old))
		copy(replaced, old)
		spliced := false
		for j := range replaced {
			if replaced[j].Month == comp.Month {
				replaced[j] = rows[i]
				spliced = true
				break
			}
		}
		if !spliced {
			rejectApply(start)
			return nil, fmt.Errorf("mpa: network %q has no analysis row for %s", name, comp.Month)
		}
		analysis[name] = replaced
	}
	data := dataset.BuildObs(analysis, tickets, sp)

	params := env.Params
	params.End = comp.Month // no-op for intra-month updates
	o := *env.OSP           // shallow copy: inventory and ground truth carry over
	o.Params = params
	o.Archive = arch
	o.Tickets = tickets
	env2 := env.Evolve(params, &o, analysis, data)

	f.env.Store(env2)
	if newMonth {
		f.cfgMu.Lock()
		f.cfg.End = comp.Month
		f.cfgMu.Unlock()
	}
	f.invalidateQueries(comp.Networks)
	ssp.End()

	res := &IngestResult{
		Month:     comp.Month,
		MonthName: comp.Month.String(),
		NewMonth:  newMonth,
		WindowEnd: params.End.String(),
		Networks:  comp.Networks,
		Snapshots: len(comp.Snapshots),
		Tickets:   len(comp.Tickets),
	}

	// Push deltas to stream subscribers. Built lazily: with nobody
	// listening the ingest path does no ranking or encoding work.
	psp := sp.Start("publish")
	f.publishIngest(env2, res)
	psp.End()

	sp.Count("snapshots", float64(res.Snapshots))
	sp.Count("tickets", float64(res.Tickets))
	sp.Count("networks", float64(len(res.Networks)))
	obs.GetCounter("ingest.updates").Add(1)
	obs.GetCounter("ingest.snapshots").Add(int64(res.Snapshots))
	obs.GetCounter("ingest.tickets").Add(int64(res.Tickets))
	ingestHist.Observe(float64(time.Since(start).Microseconds()) / 1000)
	obs.Logger().Info("ingest applied",
		"month", res.MonthName, "new_month", res.NewMonth,
		"networks", len(res.Networks), "snapshots", res.Snapshots, "tickets", res.Tickets,
		"elapsed", time.Since(start).Round(time.Millisecond))
	return res, nil
}

// NextMonths generates the months immediately after cfg's window as wire
// updates, one per month — the synthetic monitoring feed behind `mpa
// nextmonth` and `mpa watch -replay`. Generation is prefix-stable
// (TestGenerationPrefixStable): regenerating with a longer window
// reproduces the shorter window's records exactly, so the updates apply
// cleanly to any framework built from the same Config.
func NextMonths(cfg Config, extra int) ([]*IngestUpdate, error) {
	if extra < 1 {
		return nil, fmt.Errorf("mpa: NextMonths needs extra >= 1, got %d", extra)
	}
	p := cfg.params()
	base := p.End
	p.End = base.Add(extra)
	o := osp.Generate(p)
	ups := make([]*IngestUpdate, 0, extra)
	for m := base.Next(); !p.End.Before(m); m = m.Next() {
		ups = append(ups, ingest.SliceMonth(o.Archive, o.Tickets, m))
	}
	return ups, nil
}

// Subscribe registers a stream subscriber: after every applied update it
// receives one "delta" event per touched network (in sorted network
// order) followed by one "rank" event with the refreshed practice
// ranking. The returned cancel must be called to release the
// subscription; the channel closes after cancel.
func (f *Framework) Subscribe() (<-chan IngestEvent, func()) {
	return f.hub.Subscribe(0)
}

// publishIngest encodes and publishes the update's events: per-network
// health deltas in sorted order, then the refreshed ranking.
func (f *Framework) publishIngest(env *experiments.Env, res *IngestResult) {
	if f.hub == nil || f.hub.Subscribers() == 0 {
		return
	}
	evs := make([]IngestEvent, 0, len(res.Networks)+1)
	for _, name := range res.Networks {
		nh, err := networkHealth(env, name, res.Month)
		if err != nil {
			obs.Logger().Error("ingest: delta build failed", "network", name, "err", err)
			continue
		}
		b, err := json.Marshal(nh)
		if err != nil {
			continue
		}
		evs = append(evs, IngestEvent{Type: "delta", Data: b})
	}
	type rankEvent struct {
		Month string               `json:"month"`
		Rank  []PracticeDependence `json:"rank"`
	}
	if b, err := json.Marshal(rankEvent{Month: res.MonthName, Rank: f.RankPracticesCached()}); err == nil {
		evs = append(evs, IngestEvent{Type: "rank", Data: b})
	}
	f.hub.Publish(evs...)
}
