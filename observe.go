package mpa

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"mpa/internal/obs"
	"mpa/internal/report"
	"mpa/internal/runinfo"
)

// StageStat aggregates one pipeline stage's observability data. Stages
// that ran more than once (e.g. repeated MI rankings or model trainings)
// are merged: durations, allocations, and counters sum across calls.
type StageStat struct {
	// Name is the span name, e.g. "generate" or "mi_ranking".
	Name string
	// Calls is how many spans with this name ran directly under the root.
	Calls int
	// Duration is the total wall-clock time across calls.
	Duration time.Duration
	// AllocBytes is the total heap allocation across calls.
	AllocBytes uint64
	// Counters holds the stage's counters summed across calls.
	Counters map[string]float64
}

// PipelineStats is the per-stage breakdown of everything the framework has
// run so far.
type PipelineStats struct {
	// Total is the root span's age: time since the framework's pipeline
	// began.
	Total time.Duration
	// Stages lists the stages in first-execution order.
	Stages []StageStat
}

// PipelineStats summarizes the framework's observability tree: one row
// per pipeline stage with total time, allocation, and counters. Stages
// accrue as the framework runs, so call it after the work of interest.
func (f *Framework) PipelineStats() PipelineStats {
	ps := PipelineStats{}
	root := f.environment().Obs
	if root == nil {
		return ps
	}
	ps.Total = root.Duration()
	index := map[string]int{}
	for _, c := range root.Children() {
		i, ok := index[c.Name()]
		if !ok {
			i = len(ps.Stages)
			index[c.Name()] = i
			ps.Stages = append(ps.Stages, StageStat{
				Name:     c.Name(),
				Counters: map[string]float64{},
			})
		}
		st := &ps.Stages[i]
		st.Calls++
		st.Duration += c.Duration()
		st.AllocBytes += c.AllocBytes()
		for k, v := range c.Counters() {
			st.Counters[k] += v
		}
	}
	return ps
}

// Table renders the stats as a fixed-width table: one row per stage with
// call count, total time, total allocation, and the stage's counters.
func (ps PipelineStats) Table() string {
	tb := report.NewTable("Stage", "Calls", "Time", "Alloc", "Counters")
	for _, st := range ps.Stages {
		tb.AddRow(st.Name, fmt.Sprint(st.Calls),
			formatDuration(st.Duration), formatBytes(st.AllocBytes),
			formatCounters(st.Counters))
	}
	var b strings.Builder
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nPipeline age: %s across %d stage rows.\n",
		formatDuration(ps.Total), len(ps.Stages))
	return b.String()
}

// StageCalls returns how many spans named stage have run directly under
// the framework's root — e.g. StageCalls("inference") is 1 after
// construction and must stay 1 however many warm queries run. Serve-mode
// tests pin the no-recomputation guarantee with it.
func (f *Framework) StageCalls(stage string) int {
	root := f.environment().Obs
	if root == nil {
		return 0
	}
	n := 0
	for _, c := range root.Children() {
		if c.Name() == stage {
			n++
		}
	}
	return n
}

// Manifest builds the run manifest for everything the framework has run
// so far: build info, the run's config, the per-stage rollup of
// PipelineStats, a snapshot of the process metric registry (including
// the cache hit/miss counters), runtime/GC state, and the SHA-256
// digest of every experiment report produced. Like PipelineStats, it
// reflects the work done up to the call — build it last.
func (f *Framework) Manifest() *runinfo.Manifest {
	m := runinfo.New()
	cfg := f.config() // snapshot: Ingest advances the window end
	m.Config = runinfo.RunConfig{
		Seed:            cfg.Seed,
		Networks:        cfg.Networks,
		WindowStart:     cfg.Start.String(),
		WindowEnd:       cfg.End.String(),
		Workers:         cfg.Workers,
		CacheEnabled:    cfg.Cache.Enabled,
		CacheDir:        cfg.Cache.Dir,
		CacheMaxEntries: cfg.Cache.MaxEntries,
	}
	ps := f.PipelineStats()
	m.TotalWallNS = int64(ps.Total)
	m.Stages = make([]runinfo.Stage, 0, len(ps.Stages))
	for _, st := range ps.Stages {
		m.Stages = append(m.Stages, runinfo.Stage{
			Name:       st.Name,
			Calls:      st.Calls,
			WallNS:     int64(st.Duration),
			AllocBytes: st.AllocBytes,
			Counters:   st.Counters,
		})
	}
	if digests := f.environment().ReportDigests(); len(digests) > 0 {
		m.Reports = digests
	}
	return m
}

// WriteManifest writes the run manifest to path (the CLIs' -manifest
// flag).
func (f *Framework) WriteManifest(path string) error {
	return f.Manifest().Write(path)
}

// RecordStages records every pipeline stage span that has run directly
// under the framework's root into the flight recorder r, one entry per
// stage call (IDs "stage-<index>-<name>", in execution order). The
// CLIs call it on the way out so `mpa stats` can print the slowest
// stages of the last run, the run manifest carries a recorder snapshot,
// and a batch run's -debug-addr serves /debug/requests over the same
// data. Safe to call with a nil recorder or an un-instrumented
// framework (no-op).
func (f *Framework) RecordStages(r *obs.Recorder) {
	root := f.environment().Obs
	if root == nil || r == nil {
		return
	}
	for i, c := range root.Children() {
		r.Record(c, obs.RequestMeta{ID: fmt.Sprintf("stage-%03d-%s", i, c.Name())})
	}
}

// WriteTrace writes the framework's span tree as Chrome trace-event JSON,
// loadable in about:tracing or Perfetto. Open spans (the root) are
// rendered with their elapsed-so-far duration.
func (f *Framework) WriteTrace(w io.Writer) error {
	root := f.environment().Obs
	if root == nil {
		return fmt.Errorf("mpa: framework has no observability tree")
	}
	return obs.WriteChromeTrace(w, root)
}

// formatDuration rounds to a human scale: microseconds under 1ms,
// otherwise milliseconds under 10s, otherwise 10ms granularity.
func formatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < 10*time.Second:
		return d.Round(100 * time.Microsecond).String()
	default:
		return d.Round(10 * time.Millisecond).String()
	}
}

// formatBytes renders a byte count with a binary unit.
func formatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// formatCounters renders counters as "name=value" pairs in sorted order.
func formatCounters(c map[string]float64) string {
	if len(c) == 0 {
		return "-"
	}
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, k := range names {
		v := c[k]
		if v == float64(int64(v)) {
			parts = append(parts, fmt.Sprintf("%s=%d", k, int64(v)))
		} else {
			parts = append(parts, fmt.Sprintf("%s=%.2f", k, v))
		}
	}
	return strings.Join(parts, " ")
}
