package mpa

// The benchmark harness: one benchmark per table and figure of the paper
// (DESIGN.md §4), plus the ablation benches for the design decisions
// DESIGN.md calls out, plus pipeline-stage benchmarks.
//
// Benchmarks run against a shared mid-scale synthetic OSP so `go test
// -bench=.` finishes in minutes; `cmd/mpa-experiments -scale full`
// regenerates every result at the paper's full 850-network scale (the
// recorded output lives in EXPERIMENTS.md).

import (
	"sync"
	"testing"

	"mpa/internal/cache"
	"mpa/internal/ciscoios"
	"mpa/internal/confdiff"
	"mpa/internal/confmodel"
	"mpa/internal/experiments"
	"mpa/internal/ingest"
	"mpa/internal/junos"
	"mpa/internal/months"
	"mpa/internal/netmodel"
	"mpa/internal/osp"
	"mpa/internal/practices"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

// benchEnvironment lazily builds the shared benchmark OSP: 120 networks
// over 8 months.
func benchEnvironment(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		p := osp.Small(77)
		p.Networks = 120
		p.Start = months.StudyStart
		p.End = months.StudyStart.Add(7)
		env, err := experiments.NewEnv(p)
		if err != nil {
			panic(err)
		}
		benchEnv = env
	})
	return benchEnv
}

// benchExperiment runs one registered experiment b.N times.
func benchExperiment(b *testing.B, id string) {
	env := benchEnvironment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, ok := experiments.Run(env, id)
		if !ok || r.Text == "" {
			b.Fatalf("experiment %s failed", id)
		}
	}
}

// Pipeline-stage benchmarks.

// BenchmarkGenerate measures synthetic-OSP generation (inventory, config
// rendering, snapshot archiving, ticket emission).
func BenchmarkGenerate(b *testing.B) {
	p := osp.Small(1)
	p.Networks = 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		osp.Generate(p)
	}
}

// BenchmarkInference measures the practice-metric inference engine
// (parsing every snapshot, diffing, grouping, metric computation).
func BenchmarkInference(b *testing.B) {
	o := osp.Generate(func() osp.Params {
		p := osp.Small(2)
		p.Networks = 20
		return p
	}())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := practices.NewEngine(o.Inventory, o.Archive)
		if _, err := engine.Analyze(o.Params.Months()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferenceWarmCache is BenchmarkInference with the
// content-addressed cache enabled and pre-warmed: every per-network
// analysis is served from the in-memory tier, so the gap to
// BenchmarkInference is the cache's incremental-rerun speedup (results
// are byte-identical either way; see TestCacheEquivalence).
func BenchmarkInferenceWarmCache(b *testing.B) {
	o := osp.Generate(func() osp.Params {
		p := osp.Small(2)
		p.Networks = 20
		return p
	}())
	engine := practices.NewEngine(o.Inventory, o.Archive)
	engine.SetCache(cache.Config{Enabled: true})
	if _, err := engine.Analyze(o.Params.Months()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Analyze(o.Params.Months()); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-stage microbenchmarks: parse one snapshot and diff one snapshot
// pair, per dialect, through the same scratch-reusing path the inference
// engine runs. They localize an allocation regression to a stage that the
// end-to-end BenchmarkInference number can only hint at.

var (
	benchSnapOnce sync.Once
	benchSnapOut  *osp.OSP
)

// benchSnapshotPair returns the first and last snapshot texts of the
// first device of the given vendor with at least two snapshots in a
// shared small OSP — a realistic drifted same-device pair.
func benchSnapshotPair(b *testing.B, vendor netmodel.Vendor) (oldText, newText string) {
	b.Helper()
	benchSnapOnce.Do(func() {
		p := osp.Small(2)
		p.Networks = 20
		benchSnapOut = osp.Generate(p)
	})
	for _, nw := range benchSnapOut.Inventory.Networks {
		for _, dev := range nw.Devices {
			if dev.Vendor != vendor {
				continue
			}
			if hist := benchSnapOut.Archive.Snapshots(dev.Name); len(hist) >= 2 {
				return hist[0].Text, hist[len(hist)-1].Text
			}
		}
	}
	b.Fatalf("no %v device with two snapshots", vendor)
	return "", ""
}

func benchParseSnapshot(b *testing.B, d confmodel.ScratchParser, vendor netmodel.Vendor) {
	_, text := benchSnapshotPair(b, vendor)
	sc := confmodel.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ParseScratch(text, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDiffPair(b *testing.B, d confmodel.ScratchParser, vendor netmodel.Vendor) {
	oldText, newText := benchSnapshotPair(b, vendor)
	sc := confmodel.NewScratch()
	oldCfg, err := d.ParseScratch(oldText, sc)
	if err != nil {
		b.Fatal(err)
	}
	newCfg, err := d.ParseScratch(newText, sc)
	if err != nil {
		b.Fatal(err)
	}
	var buf []confdiff.StanzaChange
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = confdiff.AppendDiff(buf[:0], oldCfg, newCfg)
	}
}

func BenchmarkParseSnapshotCisco(b *testing.B) {
	benchParseSnapshot(b, ciscoios.Dialect{}, netmodel.VendorCisco)
}

func BenchmarkParseSnapshotJunos(b *testing.B) {
	benchParseSnapshot(b, junos.Dialect{}, netmodel.VendorJuniper)
}

func BenchmarkDiffPairCisco(b *testing.B) {
	benchDiffPair(b, ciscoios.Dialect{}, netmodel.VendorCisco)
}

func BenchmarkDiffPairJunos(b *testing.B) {
	benchDiffPair(b, junos.Dialect{}, netmodel.VendorJuniper)
}

// Table and figure benchmarks, in paper order.

func BenchmarkFigure2(b *testing.B)   { benchExperiment(b, "figure2") }
func BenchmarkFigure3(b *testing.B)   { benchExperiment(b, "figure3") }
func BenchmarkFigure4(b *testing.B)   { benchExperiment(b, "figure4") }
func BenchmarkFigure5(b *testing.B)   { benchExperiment(b, "figure5") }
func BenchmarkTable2(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkFigure6(b *testing.B)   { benchExperiment(b, "figure6") }
func BenchmarkTable3(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)    { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)    { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)    { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)    { benchExperiment(b, "table8") }
func BenchmarkSection61(b *testing.B) { benchExperiment(b, "section61") }
func BenchmarkFigure8(b *testing.B)   { benchExperiment(b, "figure8") }
func BenchmarkFigure9(b *testing.B)   { benchExperiment(b, "figure9") }
func BenchmarkFigure10(b *testing.B)  { benchExperiment(b, "figure10") }
func BenchmarkTable9(b *testing.B)    { benchExperiment(b, "table9") }
func BenchmarkFigure11(b *testing.B)  { benchExperiment(b, "figure11") }
func BenchmarkFigure12(b *testing.B)  { benchExperiment(b, "figure12") }
func BenchmarkFigure13(b *testing.B)  { benchExperiment(b, "figure13") }

// Ablation benchmarks (DESIGN.md §7).

func BenchmarkAblationBinning(b *testing.B)  { benchExperiment(b, "ablation-binning") }
func BenchmarkAblationMatching(b *testing.B) { benchExperiment(b, "ablation-matching") }
func BenchmarkAblationLearners(b *testing.B) { benchExperiment(b, "ablation-learners") }
func BenchmarkAblationGrouping(b *testing.B) { benchExperiment(b, "ablation-grouping") }

// BenchmarkIngestMonth measures splicing one new month into a warm
// 20-network framework — the steady-state cost of `mpa watch`, against
// BenchmarkInference's full rebuild of the same organization. Each
// iteration re-applies the same window extension to the same warm
// framework: the environment pointer is reset off-timer, so the timed
// region is exactly validate → copy-on-write splice → incremental
// inference (warm content-addressed caches) → dataset rebuild → atomic
// swap → query invalidation.
func BenchmarkIngestMonth(b *testing.B) {
	p := osp.Small(2)
	p.Networks = 20
	p.End = p.End.Next() // one month beyond BenchmarkInference's window
	o := osp.Generate(p)
	last := p.End
	arch, log := ingest.Truncate(o.Archive, o.Tickets, last.Prev())
	f, err := NewCached(o.Inventory, arch, log, p.Start, last.Prev(), CacheConfig{Enabled: true})
	if err != nil {
		b.Fatal(err)
	}
	u := ingest.SliceMonth(o.Archive, o.Tickets, last)
	env0 := f.environment()
	end0 := f.config().End
	// Prime once so the engine's parse/diff caches have seen the new
	// month's texts, as they would mid-stream.
	if _, err := f.Ingest(u); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f.env.Store(env0)
		f.cfgMu.Lock()
		f.cfg.End = end0
		f.cfgMu.Unlock()
		b.StartTimer()
		if _, err := f.Ingest(u); err != nil {
			b.Fatal(err)
		}
	}
}
