package mpa

import (
	"fmt"
	"sync"

	"mpa/internal/cache"
	"mpa/internal/dataset"
	"mpa/internal/experiments"
	"mpa/internal/practices"
)

// This file is the framework's warm query layer: memoized variants of the
// analysis entry points, built for long-lived processes (`mpa serve`) that
// answer the same questions repeatedly over one loaded organization. The
// memo is an internal/cache stage named "query", so hits and misses are
// observable next to the pipeline caches ("cache.query.*" in /metrics,
// /debug/vars, and run manifests). Inference never re-runs for a warm
// query: the framework's Analysis and Dataset are computed once at
// construction, and the derived results (MI ranking, causal analyses,
// trained models, experiment reports) are computed once per distinct
// query and served from memory afterwards.

// queryState holds the framework's memoized query results.
//
// Invalidation is generational, not delete-based: every memo key embeds
// a generation counter, and an applied ingest bumps the counters whose
// inputs changed — the global one for whole-organization queries
// (ranking, causal analyses, models, experiment reports all read every
// network) and the per-network one for exactly the touched networks.
// Old entries become unreachable and age out of the LRU; entries for
// untouched networks keep their keys and stay warm. The precision of
// this scheme — untouched networks hit, touched networks miss — is
// pinned by TestIngestCacheInvalidationPrecision.
type queryState struct {
	mu    sync.Mutex
	cache *cache.Cache
	// gen is the global query generation; netGen the per-network ones.
	// Missing netGen entries are generation 0.
	gen    uint64
	netGen map[string]uint64
	// cases indexes the dataset by network and month for O(1) predict
	// lookups; built on first use and rebuilt when the environment it
	// was built from is swapped out by an ingest.
	cases    map[string]map[Month]*dataset.Case
	casesEnv *experiments.Env
}

// queryKey builds a memo key for a whole-organization query, embedding
// the global generation.
func (f *Framework) queryKey(parts ...string) cache.Key {
	f.queries.mu.Lock()
	gen := f.queries.gen
	f.queries.mu.Unlock()
	h := cache.NewHasher("query/v1")
	h.Int(int64(gen))
	for _, p := range parts {
		h.String(p)
	}
	return h.Sum()
}

// netQueryKey builds a memo key for one network's query, embedding that
// network's generation: an ingest touching other networks leaves this
// key — and its cached entry — intact.
func (f *Framework) netQueryKey(network string, parts ...string) cache.Key {
	f.queries.mu.Lock()
	gen := f.queries.netGen[network]
	f.queries.mu.Unlock()
	h := cache.NewHasher("query/v1")
	h.Int(int64(gen)).String(network)
	for _, p := range parts {
		h.String(p)
	}
	return h.Sum()
}

// invalidateQueries is called after an ingest swaps the environment:
// whole-organization memos are invalidated unconditionally (every global
// result reads every network), per-network memos only for the touched
// networks.
func (f *Framework) invalidateQueries(networks []string) {
	f.queries.mu.Lock()
	defer f.queries.mu.Unlock()
	f.queries.gen++
	if f.queries.netGen == nil {
		f.queries.netGen = make(map[string]uint64, len(networks))
	}
	for _, n := range networks {
		f.queries.netGen[n]++
	}
}

// QueryCacheStats returns a snapshot of the warm query layer's memo
// activity (hits, misses, entries); the invalidation-precision tests
// assert on deltas of these counts around an ingest.
func (f *Framework) QueryCacheStats() CacheStats {
	return f.queryCache().Stats()
}

// queryCache returns the framework's query-result cache, creating it on
// first use. The cache is always enabled — it memoizes work on data the
// framework already holds, so there is no correctness or footprint reason
// to turn it off — and is bounded by the framework's cache MaxEntries
// setting (DefaultMaxEntries when unset).
func (f *Framework) queryCache() *cache.Cache {
	f.queries.mu.Lock()
	defer f.queries.mu.Unlock()
	if f.queries.cache == nil {
		f.queries.cache = cache.New("query", cache.Config{
			Enabled:    true,
			MaxEntries: f.cfg.Cache.MaxEntries,
		})
	}
	return f.queries.cache
}

// memoized returns the cached value for k, computing and storing it on a
// miss. Computation runs under the query lock, so concurrent identical
// queries compute once; errors are returned without being cached. compute
// must not recurse into another memoized query (the lock is not
// reentrant).
func (f *Framework) memoized(k cache.Key, compute func() (any, error)) (any, error) {
	c := f.queryCache()
	if v, ok := c.Get(k); ok {
		return v, nil
	}
	f.queries.mu.Lock()
	defer f.queries.mu.Unlock()
	if v, ok := c.Get(k); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	c.Put(k, v)
	return v, nil
}

// RankPracticesCached is RankPractices memoized: the first call computes
// the MI ranking, later calls return the stored slice (treat it as
// read-only). No pipeline stage re-runs on a warm call.
func (f *Framework) RankPracticesCached() []PracticeDependence {
	v, _ := f.memoized(f.queryKey("rank"), func() (any, error) {
		return f.RankPractices(), nil
	})
	return v.([]PracticeDependence)
}

// KnownMetric reports whether metric is one of the 28 practice metrics.
func KnownMetric(metric string) bool {
	for _, m := range practices.MetricNames {
		if m == metric {
			return true
		}
	}
	return false
}

// AnalyzeCausalCached is AnalyzeCausal memoized per treatment metric.
// Unknown metrics error without touching the cache.
func (f *Framework) AnalyzeCausalCached(metric string) (*CausalResult, error) {
	if !KnownMetric(metric) {
		return nil, fmt.Errorf("mpa: unknown practice metric %q", metric)
	}
	v, err := f.memoized(f.queryKey("causal", metric), func() (any, error) {
		return f.AnalyzeCausal(metric)
	})
	if err != nil {
		return nil, err
	}
	return v.(*CausalResult), nil
}

// HealthModelCached is TrainHealthModel memoized per granularity: the
// first call trains (one "train_model" stage), later calls return the
// same warm model.
func (f *Framework) HealthModelCached(g Granularity) (*HealthModel, error) {
	v, err := f.memoized(f.queryKey("model", fmt.Sprint(int(g))), func() (any, error) {
		return f.TrainHealthModel(g)
	})
	if err != nil {
		return nil, err
	}
	return v.(*HealthModel), nil
}

// ExperimentCached is Experiment memoized per experiment ID; ok is false
// for unknown IDs, which are never cached.
func (f *Framework) ExperimentCached(id string) (Report, bool) {
	known := false
	for _, eid := range ExperimentIDs() {
		if eid == id {
			known = true
			break
		}
	}
	if !known {
		return Report{}, false
	}
	v, _ := f.memoized(f.queryKey("experiment", id), func() (any, error) {
		r, _ := f.Experiment(id)
		return r, nil
	})
	return v.(Report), true
}

// Case returns the dataset's observation for one network-month, or false
// when the network or month is not in the dataset. The lookup index is
// built on first use and rebuilt after an ingest swaps the environment
// (the index remembers which environment it indexed — a cheap
// self-invalidation that needs no coordination with the ingest path).
func (f *Framework) Case(network string, m Month) (*Case, bool) {
	env := f.environment()
	f.queries.mu.Lock()
	if f.queries.cases == nil || f.queries.casesEnv != env {
		d := env.Data
		idx := make(map[string]map[Month]*dataset.Case, len(d.Networks()))
		for i := range d.Cases {
			c := &d.Cases[i]
			byMonth := idx[c.Network]
			if byMonth == nil {
				byMonth = make(map[Month]*dataset.Case, len(env.Window()))
				idx[c.Network] = byMonth
			}
			byMonth[c.Month] = c
		}
		f.queries.cases = idx
		f.queries.casesEnv = env
	}
	byMonth := f.queries.cases[network]
	f.queries.mu.Unlock()
	c, ok := byMonth[m]
	return c, ok
}

// NetworkHealth is one network-month's health summary: the observed
// ticket count with its class labels, plus that month's inferred change
// count. It is the payload of the per-network warm query and of the
// "delta" events the ingest stream pushes.
type NetworkHealth struct {
	Network    string  `json:"network"`
	Month      string  `json:"month"`
	Tickets    int     `json:"tickets"`
	Class2     int     `json:"class2"`
	Class2Name string  `json:"class2_name"`
	Class5     int     `json:"class5"`
	Class5Name string  `json:"class5_name"`
	Changes    int     `json:"changes"`
	ChangeFreq float64 `json:"change_frequency"`
}

// networkHealth assembles a NetworkHealth from one environment snapshot.
func networkHealth(env *experiments.Env, network string, m Month) (*NetworkHealth, error) {
	rows, ok := env.Analysis[network]
	if !ok {
		return nil, fmt.Errorf("mpa: unknown network %q", network)
	}
	for i := range rows {
		if rows[i].Month != m {
			continue
		}
		tickets := env.OSP.Tickets.HealthCount(network, m)
		return &NetworkHealth{
			Network:    network,
			Month:      m.String(),
			Tickets:    tickets,
			Class2:     dataset.Class2(tickets),
			Class2Name: dataset.Class2Names[dataset.Class2(tickets)],
			Class5:     dataset.Class5(tickets),
			Class5Name: dataset.Class5Names[dataset.Class5(tickets)],
			Changes:    len(rows[i].Changes),
			ChangeFreq: rows[i].Metrics[practices.MetricChangeEvents],
		}, nil
	}
	return nil, fmt.Errorf("mpa: no analysis for network %q in %s", network, m)
}

// NetworkHealthCached returns one network-month's health summary,
// memoized under the network's own cache generation: an ingest touching
// other networks leaves this network's entries warm, while an ingest
// touching this one invalidates exactly them. Errors (unknown network or
// month) are never cached.
func (f *Framework) NetworkHealthCached(network string, m Month) (*NetworkHealth, error) {
	env := f.environment()
	v, err := f.memoized(f.netQueryKey(network, "health", m.String()), func() (any, error) {
		return networkHealth(env, network, m)
	})
	if err != nil {
		return nil, err
	}
	return v.(*NetworkHealth), nil
}

// NetworkPrediction is one network-month's health prediction at both
// class granularities, alongside the observed outcome.
type NetworkPrediction struct {
	Network string
	Month   Month
	// Tickets is the observed non-maintenance ticket count.
	Tickets int
	// Predicted2/Predicted5 are the model predictions; the names are the
	// paper's class labels.
	Predicted2     int
	Predicted2Name string
	Predicted5     int
	Predicted5Name string
	// Actual2/Actual5 are the classes the observed tickets fall in.
	Actual2 int
	Actual5 int
}

// PredictNetworkMonth predicts one network-month's health class from its
// inferred practices, using the warm cached models (trained on first
// use). It errors when the network-month is not in the dataset.
func (f *Framework) PredictNetworkMonth(network string, m Month) (*NetworkPrediction, error) {
	c, ok := f.Case(network, m)
	if !ok {
		return nil, fmt.Errorf("mpa: no case for network %q in %s", network, m)
	}
	m2, err := f.HealthModelCached(TwoClass)
	if err != nil {
		return nil, err
	}
	m5, err := f.HealthModelCached(FiveClass)
	if err != nil {
		return nil, err
	}
	p2 := m2.Predict(c.Metrics)
	p5 := m5.Predict(c.Metrics)
	return &NetworkPrediction{
		Network:        network,
		Month:          m,
		Tickets:        c.Tickets,
		Predicted2:     p2,
		Predicted2Name: TwoClass.ClassNames()[p2],
		Predicted5:     p5,
		Predicted5Name: FiveClass.ClassNames()[p5],
		Actual2:        dataset.Class2(c.Tickets),
		Actual5:        dataset.Class5(c.Tickets),
	}, nil
}
