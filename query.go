package mpa

import (
	"fmt"
	"sync"

	"mpa/internal/cache"
	"mpa/internal/dataset"
	"mpa/internal/practices"
)

// This file is the framework's warm query layer: memoized variants of the
// analysis entry points, built for long-lived processes (`mpa serve`) that
// answer the same questions repeatedly over one loaded organization. The
// memo is an internal/cache stage named "query", so hits and misses are
// observable next to the pipeline caches ("cache.query.*" in /metrics,
// /debug/vars, and run manifests). Inference never re-runs for a warm
// query: the framework's Analysis and Dataset are computed once at
// construction, and the derived results (MI ranking, causal analyses,
// trained models, experiment reports) are computed once per distinct
// query and served from memory afterwards.

// queryState holds the framework's memoized query results.
type queryState struct {
	mu    sync.Mutex
	cache *cache.Cache
	// cases indexes the dataset by network and month for O(1) predict
	// lookups; built on first use and immutable afterwards.
	cases map[string]map[Month]*dataset.Case
}

// queryCache returns the framework's query-result cache, creating it on
// first use. The cache is always enabled — it memoizes work on data the
// framework already holds, so there is no correctness or footprint reason
// to turn it off — and is bounded by the framework's cache MaxEntries
// setting (DefaultMaxEntries when unset).
func (f *Framework) queryCache() *cache.Cache {
	f.queries.mu.Lock()
	defer f.queries.mu.Unlock()
	if f.queries.cache == nil {
		f.queries.cache = cache.New("query", cache.Config{
			Enabled:    true,
			MaxEntries: f.cfg.Cache.MaxEntries,
		})
	}
	return f.queries.cache
}

// memoized returns the cached value for k, computing and storing it on a
// miss. Computation runs under the query lock, so concurrent identical
// queries compute once; errors are returned without being cached. compute
// must not recurse into another memoized query (the lock is not
// reentrant).
func (f *Framework) memoized(k cache.Key, compute func() (any, error)) (any, error) {
	c := f.queryCache()
	if v, ok := c.Get(k); ok {
		return v, nil
	}
	f.queries.mu.Lock()
	defer f.queries.mu.Unlock()
	if v, ok := c.Get(k); ok {
		return v, nil
	}
	v, err := compute()
	if err != nil {
		return nil, err
	}
	c.Put(k, v)
	return v, nil
}

// RankPracticesCached is RankPractices memoized: the first call computes
// the MI ranking, later calls return the stored slice (treat it as
// read-only). No pipeline stage re-runs on a warm call.
func (f *Framework) RankPracticesCached() []PracticeDependence {
	v, _ := f.memoized(cache.KeyOf("query/v1", "rank"), func() (any, error) {
		return f.RankPractices(), nil
	})
	return v.([]PracticeDependence)
}

// KnownMetric reports whether metric is one of the 28 practice metrics.
func KnownMetric(metric string) bool {
	for _, m := range practices.MetricNames {
		if m == metric {
			return true
		}
	}
	return false
}

// AnalyzeCausalCached is AnalyzeCausal memoized per treatment metric.
// Unknown metrics error without touching the cache.
func (f *Framework) AnalyzeCausalCached(metric string) (*CausalResult, error) {
	if !KnownMetric(metric) {
		return nil, fmt.Errorf("mpa: unknown practice metric %q", metric)
	}
	v, err := f.memoized(cache.KeyOf("query/v1", "causal", metric), func() (any, error) {
		return f.AnalyzeCausal(metric)
	})
	if err != nil {
		return nil, err
	}
	return v.(*CausalResult), nil
}

// HealthModelCached is TrainHealthModel memoized per granularity: the
// first call trains (one "train_model" stage), later calls return the
// same warm model.
func (f *Framework) HealthModelCached(g Granularity) (*HealthModel, error) {
	v, err := f.memoized(cache.KeyOf("query/v1", "model", fmt.Sprint(int(g))), func() (any, error) {
		return f.TrainHealthModel(g)
	})
	if err != nil {
		return nil, err
	}
	return v.(*HealthModel), nil
}

// ExperimentCached is Experiment memoized per experiment ID; ok is false
// for unknown IDs, which are never cached.
func (f *Framework) ExperimentCached(id string) (Report, bool) {
	known := false
	for _, eid := range ExperimentIDs() {
		if eid == id {
			known = true
			break
		}
	}
	if !known {
		return Report{}, false
	}
	v, _ := f.memoized(cache.KeyOf("query/v1", "experiment", id), func() (any, error) {
		r, _ := f.Experiment(id)
		return r, nil
	})
	return v.(Report), true
}

// Case returns the dataset's observation for one network-month, or false
// when the network or month is not in the dataset. The lookup index is
// built on first use.
func (f *Framework) Case(network string, m Month) (*Case, bool) {
	f.queries.mu.Lock()
	if f.queries.cases == nil {
		d := f.env.Data
		idx := make(map[string]map[Month]*dataset.Case, len(d.Networks()))
		for i := range d.Cases {
			c := &d.Cases[i]
			byMonth := idx[c.Network]
			if byMonth == nil {
				byMonth = make(map[Month]*dataset.Case, len(f.Window()))
				idx[c.Network] = byMonth
			}
			byMonth[c.Month] = c
		}
		f.queries.cases = idx
	}
	byMonth := f.queries.cases[network]
	f.queries.mu.Unlock()
	c, ok := byMonth[m]
	return c, ok
}

// NetworkPrediction is one network-month's health prediction at both
// class granularities, alongside the observed outcome.
type NetworkPrediction struct {
	Network string
	Month   Month
	// Tickets is the observed non-maintenance ticket count.
	Tickets int
	// Predicted2/Predicted5 are the model predictions; the names are the
	// paper's class labels.
	Predicted2     int
	Predicted2Name string
	Predicted5     int
	Predicted5Name string
	// Actual2/Actual5 are the classes the observed tickets fall in.
	Actual2 int
	Actual5 int
}

// PredictNetworkMonth predicts one network-month's health class from its
// inferred practices, using the warm cached models (trained on first
// use). It errors when the network-month is not in the dataset.
func (f *Framework) PredictNetworkMonth(network string, m Month) (*NetworkPrediction, error) {
	c, ok := f.Case(network, m)
	if !ok {
		return nil, fmt.Errorf("mpa: no case for network %q in %s", network, m)
	}
	m2, err := f.HealthModelCached(TwoClass)
	if err != nil {
		return nil, err
	}
	m5, err := f.HealthModelCached(FiveClass)
	if err != nil {
		return nil, err
	}
	p2 := m2.Predict(c.Metrics)
	p5 := m5.Predict(c.Metrics)
	return &NetworkPrediction{
		Network:        network,
		Month:          m,
		Tickets:        c.Tickets,
		Predicted2:     p2,
		Predicted2Name: TwoClass.ClassNames()[p2],
		Predicted5:     p5,
		Predicted5Name: FiveClass.ClassNames()[p5],
		Actual2:        dataset.Class2(c.Tickets),
		Actual5:        dataset.Class5(c.Tickets),
	}, nil
}
