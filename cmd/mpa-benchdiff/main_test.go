package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpa/internal/runinfo"
)

// benchFile writes a bench.sh-style JSON-lines baseline.
func benchFile(t *testing.T, name string, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const (
	recA1 = `{"date":"2026-08-05T00:00:00Z","gomaxprocs":1,"name":"BenchmarkInference","iterations":2,"ns_per_op":1000,"bytes_per_op":10,"allocs_per_op":100}`
	recA2 = `{"date":"2026-08-05T00:00:00Z","gomaxprocs":1,"name":"BenchmarkInference","iterations":2,"ns_per_op":1100,"bytes_per_op":10,"allocs_per_op":100}`
	recA3 = `{"date":"2026-08-05T00:00:00Z","gomaxprocs":1,"name":"BenchmarkInference","iterations":2,"ns_per_op":900,"bytes_per_op":10,"allocs_per_op":100}`
)

func TestLoadBenchLines(t *testing.T) {
	path := benchFile(t, "bench.json", recA1, recA2, "", recA3)
	s, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.samples["BenchmarkInference"]); got != 3 {
		t.Fatalf("loaded %d samples, want 3", got)
	}
	if len(s.procs) != 1 || !s.procs[1] {
		t.Errorf("procs = %v, want {1}", s.procs)
	}
	m := medians(s.samples)["BenchmarkInference"]
	if m.ns != 1000 || m.allocs != 100 {
		t.Errorf("median = %+v, want ns=1000 allocs=100", m)
	}
}

func TestLoadManifest(t *testing.T) {
	m := runinfo.New()
	m.Stages = []runinfo.Stage{
		{Name: "inference", Calls: 2, WallNS: 2000, AllocBytes: 600},
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	s, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	got := s.samples["inference"]
	if len(got) != 1 || got[0].ns != 1000 || got[0].allocs != 300 {
		t.Errorf("manifest samples = %+v, want one per-call sample ns=1000 allocs=300", got)
	}
	if len(s.procs) != 0 {
		t.Errorf("manifest procs = %v, want empty (format carries none)", s.procs)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := benchFile(t, "junk.json", "not json at all")
	if _, err := load(path); err == nil {
		t.Fatal("load accepted garbage")
	}
	empty := benchFile(t, "empty.json", "")
	if _, err := load(empty); err == nil {
		t.Fatal("load accepted an empty baseline")
	}
}

func TestCheckProcsMismatchRefuses(t *testing.T) {
	// A 1-proc baseline vs an 8-proc run measures scheduling, not code:
	// the comparison must be refused, not silently passed.
	err := checkProcs(map[int]bool{1: true}, map[int]bool{8: true})
	if err == nil {
		t.Fatal("GOMAXPROCS mismatch not refused")
	}
	for _, want := range []string{"old: 1", "new: 8"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestCheckProcsMatchingOrUnknownPasses(t *testing.T) {
	cases := []struct {
		name     string
		old, new map[int]bool
	}{
		{"matching", map[int]bool{4: true}, map[int]bool{4: true}},
		{"old unknown", nil, map[int]bool{8: true}},
		{"new unknown", map[int]bool{1: true}, map[int]bool{}},
		{"both unknown", nil, nil},
		{"matching multi", map[int]bool{1: true, 4: true}, map[int]bool{4: true, 1: true}},
	}
	for _, c := range cases {
		if err := checkProcs(c.old, c.new); err != nil {
			t.Errorf("%s: unexpected refusal: %v", c.name, err)
		}
	}
	if err := checkProcs(map[int]bool{1: true, 4: true}, map[int]bool{4: true}); err == nil {
		t.Error("subset proc sets not refused")
	}
}

func TestMedianEven(t *testing.T) {
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
}

// gate runs compare on two single-sample series with default thresholds.
func gate(t *testing.T, oldNS, newNS, oldAllocs, newAllocs float64) ([]row, bool) {
	t.Helper()
	oldM := map[string]stat{"b": {ns: oldNS, allocs: oldAllocs, n: 1}}
	newM := map[string]stat{"b": {ns: newNS, allocs: newAllocs, n: 1}}
	return compare(oldM, newM, 0.08, 0.02)
}

func TestCompareIdenticalPasses(t *testing.T) {
	rows, regressed := gate(t, 1000, 1000, 100, 100)
	if regressed {
		t.Fatal("identical inputs flagged as regression")
	}
	if rows[0].verdict != "ok" {
		t.Errorf("verdict = %q, want ok", rows[0].verdict)
	}
}

func TestCompareDetectsNSRegression(t *testing.T) {
	// The acceptance scenario: a synthetic 20% slowdown must gate.
	rows, regressed := gate(t, 1000, 1200, 100, 100)
	if !regressed {
		t.Fatal("20% ns regression not flagged")
	}
	if rows[0].verdict != "REGRESSION" {
		t.Errorf("verdict = %q, want REGRESSION", rows[0].verdict)
	}
}

func TestCompareNoiseWithinThresholdPasses(t *testing.T) {
	if _, regressed := gate(t, 1000, 1070, 100, 100); regressed {
		t.Fatal("7% ns delta flagged despite 8% threshold")
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	// Allocs are nearly deterministic, so the threshold is much tighter.
	if _, regressed := gate(t, 1000, 1000, 100, 103); !regressed {
		t.Fatal("3% alloc regression not flagged at 2% threshold")
	}
}

func TestCompareImprovementNeverFails(t *testing.T) {
	rows, regressed := gate(t, 1000, 700, 100, 90)
	if regressed {
		t.Fatal("improvement flagged as regression")
	}
	if rows[0].verdict != "improved" {
		t.Errorf("verdict = %q, want improved", rows[0].verdict)
	}
}

func TestCompareAddedNameNeverFails(t *testing.T) {
	// A benchmark that exists only in the new run has no baseline yet:
	// informational, not a regression.
	oldM := map[string]stat{"b": {ns: 1, allocs: 1, n: 1}}
	newM := map[string]stat{"b": {ns: 1, allocs: 1, n: 1}, "fresh": {ns: 1, allocs: 1, n: 1}}
	rows, regressed := compare(oldM, newM, 0.08, 0.02)
	if regressed {
		t.Fatal("added name treated as regression")
	}
	for _, r := range rows {
		if r.name == "fresh" && (r.verdict != "only in new" || !r.onlyNew) {
			t.Errorf("fresh row = %+v", r)
		}
	}
}

func TestCompareRemovedBaselineNameFails(t *testing.T) {
	// Regression: a baseline name missing from the new run used to be
	// listed as "only in old" and dropped from the gate, so deleting or
	// renaming a benchmark silently removed its regression coverage. It
	// must fail the comparison (exit 2 in main).
	oldM := map[string]stat{"b": {ns: 1, allocs: 1, n: 1}, "gone": {ns: 1, allocs: 1, n: 1}}
	newM := map[string]stat{"b": {ns: 1, allocs: 1, n: 1}}
	rows, regressed := compare(oldM, newM, 0.08, 0.02)
	if !regressed {
		t.Fatal("baseline name missing from new run did not fail the gate")
	}
	found := false
	for _, r := range rows {
		if r.name == "gone" {
			found = true
			if !r.onlyOld || !r.regressed || r.verdict != "MISSING FROM NEW" {
				t.Errorf("gone row = %+v", r)
			}
		}
		if r.name == "b" && r.regressed {
			t.Errorf("unchanged row flagged: %+v", r)
		}
	}
	if !found {
		t.Fatal("removed name not reported in rows")
	}
}

func TestRenderTable(t *testing.T) {
	rows, _ := gate(t, 1000, 1200, 100, 100)
	out := render(rows)
	for _, want := range []string{"Benchmark", "b", "+20.0%", "REGRESSION"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
