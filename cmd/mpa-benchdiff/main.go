// Command mpa-benchdiff is the repository's performance-regression
// gate: it compares two recorded performance baselines and exits
// non-zero when the new one regresses beyond a noise threshold, so the
// bench trajectory is enforced rather than decorative.
//
// Usage:
//
//	mpa-benchdiff [-ns-threshold 0.08] [-alloc-threshold 0.02] OLD NEW
//
// OLD and NEW are either bench baselines written by scripts/bench.sh
// (BENCH_<date>.json: one JSON object per line with ns_per_op /
// allocs_per_op) or run manifests written by `-manifest`
// (mpa.run-manifest/v1: per-stage wall_ns / alloc_bytes rollups). Both
// files should be the same kind — stage names and benchmark names don't
// overlap, so mixing kinds compares nothing.
//
// For every name present in both files the per-name medians are
// compared. A regression is a relative increase beyond the threshold:
// ±8% ns/op and ±2% allocs/op by default, tunable per CI runner noise
// (the repository's single-core CI warns at the defaults and hard-fails
// at 25%).
//
// Names present in only one input are reported explicitly: a name that
// appears only in NEW is informational (a freshly added benchmark has no
// baseline yet), but a baseline name missing from NEW fails the gate — a
// deleted or renamed benchmark must not silently vanish from regression
// coverage.
//
// Exit status: 0 when nothing regressed (improvements are reported but
// never fail), 2 when at least one comparison regressed or a baseline
// name is missing from NEW, 1 on bad usage or unreadable input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mpa/internal/report"
	"mpa/internal/runinfo"
)

func main() {
	nsThr := flag.Float64("ns-threshold", 0.08, "relative ns/op increase treated as regression")
	allocThr := flag.Float64("alloc-threshold", 0.02, "relative allocs/op increase treated as regression")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mpa-benchdiff [-ns-threshold F] [-alloc-threshold F] OLD NEW")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(1)
	}

	oldL, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newL, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if err := checkProcs(oldL.procs, newL.procs); err != nil {
		fatal(err)
	}

	rows, regressed := compare(medians(oldL.samples), medians(newL.samples), *nsThr, *allocThr)
	fmt.Print(render(rows))
	var added, removed []string
	for _, r := range rows {
		switch {
		case r.onlyNew:
			added = append(added, r.name)
		case r.onlyOld:
			removed = append(removed, r.name)
		}
	}
	if len(added) > 0 {
		fmt.Printf("\nadded (no baseline yet): %s\n", strings.Join(added, ", "))
	}
	if len(removed) > 0 {
		fmt.Printf("\nremoved from new run (FAIL): %s\n", strings.Join(removed, ", "))
	}
	if regressed {
		fmt.Printf("\nFAIL: regression beyond ±%.0f%% ns/op or ±%.0f%% allocs/op, or baseline name missing from new run\n",
			*nsThr*100, *allocThr*100)
		os.Exit(2)
	}
	fmt.Println("\nOK: no regression beyond thresholds")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpa-benchdiff:", err)
	os.Exit(1)
}

// sample is one performance observation of a named unit: a benchmark
// iteration batch, or a manifest stage rollup normalized per call.
type sample struct {
	ns     float64 // wall nanoseconds per operation
	allocs float64 // allocations (bench) or bytes (manifest) per operation
}

// benchRecord is one line of a scripts/bench.sh baseline.
type benchRecord struct {
	Name        string  `json:"name"`
	Gomaxprocs  int     `json:"gomaxprocs"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// loaded is one parsed baseline: the per-name samples plus the distinct
// GOMAXPROCS values the records were taken at (empty when the format
// doesn't carry them — run manifests and pre-gomaxprocs bench files).
type loaded struct {
	samples map[string][]sample
	procs   map[int]bool
}

// load reads either baseline format into name → samples. Run manifests
// are detected by their schema marker; anything else must parse as
// bench JSON lines.
func load(path string) (loaded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return loaded{}, err
	}
	if isManifest(data) {
		m, err := runinfo.Read(path)
		if err != nil {
			return loaded{}, err
		}
		return loaded{samples: manifestSamples(m)}, nil
	}
	return benchSamples(path, data)
}

// checkProcs refuses a comparison whose two sides were definitely
// recorded at different GOMAXPROCS: ns/op at 1 proc vs 8 procs measures
// scheduling, not the code, and such a diff would "pass" while hiding
// real regressions. Files that don't record gomaxprocs (manifests, old
// baselines) can't be checked and pass through.
func checkProcs(oldP, newP map[int]bool) error {
	if len(oldP) == 0 || len(newP) == 0 {
		return nil
	}
	if !sameSet(oldP, newP) {
		return fmt.Errorf("refusing to diff: baselines recorded at different GOMAXPROCS (old: %s, new: %s); re-record one side at a matching -cpu / GOMAXPROCS",
			procList(oldP), procList(newP))
	}
	return nil
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func procList(p map[int]bool) string {
	vals := make([]int, 0, len(p))
	for v := range p {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// isManifest sniffs for the run-manifest schema marker in a whole-file
// JSON object.
func isManifest(data []byte) bool {
	var probe struct {
		Schema string `json:"schema"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.Schema == runinfo.Schema
}

// manifestSamples turns stage rollups into per-call samples.
func manifestSamples(m *runinfo.Manifest) map[string][]sample {
	out := make(map[string][]sample, len(m.Stages))
	for _, st := range m.Stages {
		calls := float64(st.Calls)
		out[st.Name] = append(out[st.Name], sample{
			ns:     float64(st.WallNS) / calls,
			allocs: float64(st.AllocBytes) / calls,
		})
	}
	return out
}

// benchSamples parses bench.sh JSON lines.
func benchSamples(path string, data []byte) (loaded, error) {
	out := loaded{samples: map[string][]sample{}, procs: map[int]bool{}}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec benchRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return loaded{}, fmt.Errorf("%s:%d: not a bench record: %w", path, line, err)
		}
		if rec.Name == "" {
			return loaded{}, fmt.Errorf("%s:%d: bench record without a name", path, line)
		}
		if rec.Gomaxprocs > 0 {
			out.procs[rec.Gomaxprocs] = true
		}
		out.samples[rec.Name] = append(out.samples[rec.Name], sample{ns: rec.NsPerOp, allocs: rec.AllocsPerOp})
	}
	if err := sc.Err(); err != nil {
		return loaded{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(out.samples) == 0 {
		return loaded{}, fmt.Errorf("%s: no benchmark records", path)
	}
	return out, nil
}

// stat is the per-name median of a sample series.
type stat struct {
	ns, allocs float64
	n          int
}

// medians collapses each name's samples to their medians — the robust
// center bench comparisons want, since timing noise is one-sided.
func medians(s map[string][]sample) map[string]stat {
	out := make(map[string]stat, len(s))
	for name, samples := range s {
		ns := make([]float64, len(samples))
		al := make([]float64, len(samples))
		for i, sm := range samples {
			ns[i], al[i] = sm.ns, sm.allocs
		}
		out[name] = stat{ns: median(ns), allocs: median(al), n: len(samples)}
	}
	return out
}

// median returns the middle value (mean of the two middles for even n).
func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// row is one rendered comparison.
type row struct {
	name             string
	oldNS, newNS     float64
	dNS, dAllocs     float64 // relative deltas; NaN-free (0 when old is 0)
	verdict          string
	regressed        bool
	onlyOld, onlyNew bool
}

// compare builds per-name comparison rows in sorted name order and
// reports whether anything regressed. Names present only in the new
// input are listed but never fail; names present only in the old input
// (the baseline) fail the gate — a benchmark that disappears must be an
// explicit baseline refresh, not a silent coverage hole.
func compare(oldM, newM map[string]stat, nsThr, allocThr float64) ([]row, bool) {
	names := map[string]bool{}
	for n := range oldM {
		names[n] = true
	}
	for n := range newM {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var rows []row
	anyRegressed := false
	for _, name := range sorted {
		o, haveOld := oldM[name]
		n, haveNew := newM[name]
		r := row{name: name, oldNS: o.ns, newNS: n.ns}
		switch {
		case !haveOld:
			r.verdict, r.onlyNew = "only in new", true
		case !haveNew:
			r.verdict, r.onlyOld, r.regressed = "MISSING FROM NEW", true, true
			anyRegressed = true
		default:
			r.dNS = rel(o.ns, n.ns)
			r.dAllocs = rel(o.allocs, n.allocs)
			switch {
			case r.dNS > nsThr || r.dAllocs > allocThr:
				r.verdict, r.regressed = "REGRESSION", true
				anyRegressed = true
			case r.dNS < -nsThr:
				r.verdict = "improved"
			default:
				r.verdict = "ok"
			}
		}
		rows = append(rows, r)
	}
	return rows, anyRegressed
}

// rel is the relative delta (new-old)/old, 0 when old is 0.
func rel(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

// render draws the comparison table.
func render(rows []row) string {
	tb := report.NewTable("Benchmark", "Old ns/op", "New ns/op", "Δns", "Δallocs", "Verdict")
	for _, r := range rows {
		if r.onlyOld || r.onlyNew {
			tb.AddRow(r.name, cell(r.onlyNew, r.oldNS), cell(r.onlyOld, r.newNS), "-", "-", r.verdict)
			continue
		}
		tb.AddRow(r.name,
			fmt.Sprintf("%.0f", r.oldNS), fmt.Sprintf("%.0f", r.newNS),
			fmt.Sprintf("%+.1f%%", r.dNS*100), fmt.Sprintf("%+.1f%%", r.dAllocs*100),
			r.verdict)
	}
	return tb.String()
}

// cell renders a ns value, or "-" when that side is missing.
func cell(missing bool, v float64) string {
	if missing {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}
