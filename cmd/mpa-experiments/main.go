// Command mpa-experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for the recorded paper-vs-measured comparison).
//
// Usage:
//
//	mpa-experiments [-seed N] [-scale small|medium|full] [-only id,id,...]
//	                [-workers N] [-cache] [-cache-dir DIR] [-cache-max N]
//
// Scale selects the synthetic OSP size: small (60 networks, 6 months),
// medium (240 networks, 10 months), or full (the paper's 850 networks
// over 17 months; takes a few minutes and several GB of memory).
//
// -workers bounds the goroutines each pipeline stage (generation,
// inference, CV folds, forest trees, experiment fan-out) may use; 0 (the
// default) uses every CPU. Output is byte-identical at any worker count.
//
// -cache (default true) memoizes the pipeline's pure stages — snapshot
// parsing, config diffing, per-network practice inference, the dataset
// build — under SHA-256 content keys. -cache-dir adds an on-disk tier:
// re-running with the same directory skips all unchanged per-network
// work, which is most of the pipeline. Output is byte-identical with the
// cache cold, warm, or disabled (-cache=false); hit/miss/evict counters
// appear under "cache.*" in /debug/vars and the stats breakdown.
//
// The observability flags of cmd/mpa (-v, -vv, -progress, -cpuprofile,
// -memprofile, -trace, -manifest, -debug-addr) are available here too.
// -progress renders a live per-stage completion line on stderr;
// -manifest writes a run-manifest JSON on exit (build info, config,
// per-stage rollups, the metric registry, and a SHA-256 digest of every
// experiment report) that cmd/mpa-benchdiff can compare across runs;
// -debug-addr additionally serves Prometheus text-format /metrics.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpa"
	"mpa/internal/cache"
	"mpa/internal/obs"
	"mpa/internal/par"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	scale := flag.String("scale", "medium", "small | medium | full")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	workers := flag.Int("workers", 0, "worker goroutines per pipeline stage (0 = all CPUs); results are identical at any count")
	cacheOn := flag.Bool("cache", true, "content-addressed caching of pure pipeline stages; results are identical either way")
	cacheDir := flag.String("cache-dir", "", "on-disk cache tier directory (empty = in-memory only); warm re-runs skip unchanged per-network work")
	cacheMax := flag.Int("cache-max", cache.DefaultMaxEntries, "max in-memory cache entries per pipeline stage")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "mpa-experiments:", err)
		os.Exit(1)
	}
	par.SetDefaultWorkers(*workers)

	var cfg mpa.Config
	switch *scale {
	case "small":
		cfg = mpa.SmallConfig(*seed)
	case "medium":
		cfg = mpa.SmallConfig(*seed)
		cfg.Networks = 240
		start, _ := mpa.StudyWindow()
		cfg.Start = start
		cfg.End = start.Add(9)
	case "full":
		cfg = mpa.DefaultConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Workers = *workers
	cfg.Cache = mpa.CacheConfig{Enabled: *cacheOn, Dir: *cacheDir, MaxEntries: *cacheMax}

	ids := mpa.ExperimentIDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	obs.Logger().Info("generating OSP",
		"networks", cfg.Networks, "start", cfg.Start.String(), "end", cfg.End.String(),
		"seed", cfg.Seed, "scale", *scale)
	t0 := time.Now()
	f, err := mpa.NewSynthetic(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpa-experiments:", err)
		os.Exit(1)
	}
	obs.Logger().Info("generation + inference complete",
		"elapsed", time.Since(t0).Round(time.Second).String(), "dataset", f.Dataset().String())

	// Fan the experiments out across workers; results come back in input
	// order, so the printed output is identical at any worker count.
	t1 := time.Now()
	for _, res := range f.RunExperiments(ids, cfg.Workers) {
		if !res.OK {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", res.ID)
			continue
		}
		r := res.Report
		fmt.Println(r.Title)
		fmt.Println(strings.Repeat("=", len(r.Title)))
		fmt.Println(r.Text)
	}
	obs.Logger().Info("experiments complete",
		"count", len(ids), "elapsed", time.Since(t1).Round(time.Millisecond).String())

	if obsFlags.ManifestPath != "" {
		m := f.Manifest()
		m.Config.Extra = map[string]string{"command": "mpa-experiments", "scale": *scale}
		if err := m.Write(obsFlags.ManifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "mpa-experiments:", err)
			os.Exit(1)
		}
		obs.Logger().Info("manifest written", "path", obsFlags.ManifestPath,
			"stages", len(m.Stages), "reports", len(m.Reports))
	}
	if err := obsFlags.Stop(f.WriteTrace); err != nil {
		fmt.Fprintln(os.Stderr, "mpa-experiments:", err)
		os.Exit(1)
	}
}
