// Command mpa-experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for the recorded paper-vs-measured comparison).
//
// Usage:
//
//	mpa-experiments [-seed N] [-scale small|medium|full] [-only id,id,...]
//
// Scale selects the synthetic OSP size: small (60 networks, 6 months),
// medium (240 networks, 10 months), or full (the paper's 850 networks
// over 17 months; takes a few minutes and several GB of memory).
//
// The observability flags of cmd/mpa (-v, -vv, -cpuprofile, -memprofile,
// -trace, -debug-addr) are available here too; progress lines go to the
// structured logger, so pass -v to see them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mpa"
	"mpa/internal/obs"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	scale := flag.String("scale", "medium", "small | medium | full")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()
	if err := obsFlags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "mpa-experiments:", err)
		os.Exit(1)
	}

	var cfg mpa.Config
	switch *scale {
	case "small":
		cfg = mpa.SmallConfig(*seed)
	case "medium":
		cfg = mpa.SmallConfig(*seed)
		cfg.Networks = 240
		start, _ := mpa.StudyWindow()
		cfg.Start = start
		cfg.End = start.Add(9)
	case "full":
		cfg = mpa.DefaultConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := mpa.ExperimentIDs()
	if *only != "" {
		ids = strings.Split(*only, ",")
	}

	obs.Logger().Info("generating OSP",
		"networks", cfg.Networks, "start", cfg.Start.String(), "end", cfg.End.String(),
		"seed", cfg.Seed, "scale", *scale)
	t0 := time.Now()
	f, err := mpa.NewSynthetic(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpa-experiments:", err)
		os.Exit(1)
	}
	obs.Logger().Info("generation + inference complete",
		"elapsed", time.Since(t0).Round(time.Second).String(), "dataset", f.Dataset().String())

	for _, id := range ids {
		t1 := time.Now()
		r, ok := f.Experiment(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			continue
		}
		fmt.Println(r.Title)
		fmt.Println(strings.Repeat("=", len(r.Title)))
		fmt.Println(r.Text)
		obs.Logger().Info("experiment complete",
			"id", r.ID, "elapsed", time.Since(t1).Round(time.Millisecond).String())
	}

	if err := obsFlags.Stop(f.WriteTrace); err != nil {
		fmt.Fprintln(os.Stderr, "mpa-experiments:", err)
		os.Exit(1)
	}
}
