// Command mpa-slogate evaluates a load-manifest against an SLO spec
// and fails CI when an objective is violated.
//
// Usage:
//
//	mpa-slogate [-warn-only] SPEC.json LOAD-MANIFEST.json
//
// SPEC is an mpa.slo-spec/v1 file (see internal/slo); LOAD-MANIFEST is
// the mpa.load-manifest/v1 artifact written by cmd/mpa-loadgen. Every
// objective's verdict is printed as a table; any violation exits with
// status 2 so CI fails loudly. -warn-only downgrades violations to a
// warning and exits 0 — for soak branches where the SLO is
// informational. Usage or I/O problems exit 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpa/internal/loadgen"
	"mpa/internal/report"
	"mpa/internal/slo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mpa-slogate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	warnOnly := fs.Bool("warn-only", false, "report violations but exit 0")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: mpa-slogate [-warn-only] SPEC.json LOAD-MANIFEST.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 1
	}

	spec, err := slo.ReadSpec(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "mpa-slogate:", err)
		return 1
	}
	m, err := loadgen.Read(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "mpa-slogate:", err)
		return 1
	}

	res := slo.Evaluate(spec, m)
	fmt.Fprint(stdout, render(res))
	fmt.Fprintf(stdout, "\n%d objectives checked, %d violated (manifest: %d requests at %.1f req/s)\n",
		len(res.Checks), res.Violations, m.Totals.Requests, m.Totals.AchievedRPS)

	if res.Violations == 0 {
		fmt.Fprintln(stdout, "SLO gate: pass")
		return 0
	}
	if *warnOnly {
		fmt.Fprintln(stdout, "SLO gate: violations present, -warn-only set — not failing")
		return 0
	}
	fmt.Fprintln(stderr, "SLO gate: FAIL")
	return 2
}

// render draws one row per check.
func render(res slo.Result) string {
	tb := report.NewTable("Endpoint", "Objective", "Limit", "Got", "Verdict")
	for _, c := range res.Checks {
		verdict := "ok"
		switch {
		case !c.OK:
			verdict = "VIOLATION"
		case c.Note != "":
			verdict = "skipped"
		}
		limit, got := fmt.Sprintf("%.4g", c.Limit), fmt.Sprintf("%.4g", c.Got)
		if c.Name == "presence" {
			limit, got = "-", "absent"
		}
		tb.AddRow(c.Endpoint, c.Name, limit, got, verdict)
	}
	return tb.String()
}
