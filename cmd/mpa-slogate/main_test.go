package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpa/internal/loadgen"
)

// writeManifest records a known latency shape (rank max 40ms, network
// 20% errors) and writes the manifest for the gate to read.
func writeManifest(t *testing.T, dir string) string {
	t.Helper()
	c := loadgen.NewCollector()
	lat := []time.Duration{
		2 * time.Millisecond, 3 * time.Millisecond, 40 * time.Millisecond,
		900 * time.Microsecond, 7 * time.Millisecond,
	}
	for i, d := range lat {
		c.Record("rank", d, false)
		c.Record("network", d*2, i == 4)
	}
	m := c.Manifest("http://x", loadgen.Config{Rate: 1, DurationSeconds: 5, Mix: "rank=1"},
		5*time.Second, time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC))
	path := filepath.Join(dir, "load-manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeSpec(t *testing.T, dir, body string) string {
	t.Helper()
	path := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const passingSpec = `{
  "schema": "mpa.slo-spec/v1",
  "endpoints": {
    "rank":    {"max_error_rate": 0, "latency_ms": {"p50": 50, "p99": 100}},
    "network": {"max_error_rate": 0.25, "latency_ms": {"p99": 200}}
  }
}`

func TestGatePass(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir)
	spec := writeSpec(t, dir, passingSpec)
	var out, errb strings.Builder
	if code := run([]string{spec, manifest}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	for _, want := range []string{"SLO gate: pass", "rank", "p99", "error_rate"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

// TestGateTightenedThresholdExits2 pins the CI contract end to end:
// tightening a threshold below the measured value turns exit 0 into
// exit 2.
func TestGateTightenedThresholdExits2(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir)
	tightened := strings.Replace(passingSpec, `"p99": 100`, `"p99": 1`, 1)
	spec := writeSpec(t, dir, tightened)
	var out, errb strings.Builder
	if code := run([]string{spec, manifest}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "VIOLATION") {
		t.Errorf("stdout missing VIOLATION row:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "SLO gate: FAIL") {
		t.Errorf("stderr missing failure banner:\n%s", errb.String())
	}

	// -warn-only downgrades the same violation to exit 0.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-warn-only", spec, manifest}, &out, &errb); code != 0 {
		t.Fatalf("warn-only exit = %d, want 0", code)
	}
	if !strings.Contains(out.String(), "-warn-only") {
		t.Errorf("warn-only run does not announce itself:\n%s", out.String())
	}
}

func TestGateUsageAndIOErrors(t *testing.T) {
	dir := t.TempDir()
	manifest := writeManifest(t, dir)
	spec := writeSpec(t, dir, passingSpec)
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 1 {
		t.Errorf("no args exit = %d, want 1", code)
	}
	if code := run([]string{filepath.Join(dir, "absent.json"), manifest}, &out, &errb); code != 1 {
		t.Errorf("missing spec exit = %d, want 1", code)
	}
	if code := run([]string{spec, filepath.Join(dir, "absent.json")}, &out, &errb); code != 1 {
		t.Errorf("missing manifest exit = %d, want 1", code)
	}
	bad := writeSpec(t, filepath.Join(dir), `{"schema":"mpa.slo-spec/v1","endpoints":{}}`)
	if code := run([]string{bad, manifest}, &out, &errb); code != 1 {
		t.Errorf("invalid spec exit = %d, want 1", code)
	}
}

// TestCheckedInSpecMatchesRepoBaseline guards the actual testdata file
// CI feeds the gate: it must parse, validate, and cover the read
// endpoints the default loadgen mix exercises.
func TestCheckedInSpecMatchesRepoBaseline(t *testing.T) {
	var out, errb strings.Builder
	dir := t.TempDir()
	manifest := writeManifest(t, dir)
	// Spec must at least load (exit 1 would mean an invalid checked-in
	// baseline). Violations are fine here — this synthetic manifest does
	// not cover every endpoint the baseline names.
	code := run([]string{"../../testdata/slo.json", manifest}, &out, &errb)
	if code == 1 {
		t.Fatalf("checked-in testdata/slo.json unusable: %s", errb.String())
	}
}
