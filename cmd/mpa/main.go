// Command mpa runs the management plane analytics pipeline on a synthetic
// organization: generate data, rank practices, run causal analyses, and
// train health models.
//
// Usage:
//
//	mpa [flags] <subcommand>
//
// Subcommands:
//
//	summary       dataset sizes (paper Table 2)
//	rank          practices by statistical dependence with health (Table 3)
//	causal        matched-design causal analysis of one practice (-practice)
//	predict       train and evaluate health models (§6.1)
//	online        month-ahead prediction accuracy (Table 9) (-history)
//	characterize  design/operational practice characterization (Appendix A)
//	experiment    run one paper experiment by id (-id), or list ids
//	export        write the organization's raw data to -dir (JSON/CSV/tree)
//	report        per-network report card (-network)
//	stats         run the main pipeline stages and print the per-stage
//	              observability breakdown (time, allocs, counters) plus
//	              the flight recorder's slowest-stage list
//	serve         load once and answer analysis queries over HTTP
//	              (-addr, -max-inflight); see internal/serve. With
//	              -orgs or -orgs-config, load one warm framework per
//	              organization and shard /v1/* by tenant (path segment
//	              /v1/orgs/{org}/... or X-MPA-Org header), with
//	              cross-org aggregates at /v1/fleet/rank and
//	              /v1/fleet/health
//	watch         serve plus streaming ingest: poll -watch-dir for
//	              update files and/or -replay N synthetic months, apply
//	              each in place (POST /v1/ingest works too), and push
//	              deltas to GET /v1/stream subscribers
//	nextmonth     print the month after the configured window as a wire
//	              update (JSON) on stdout — generation is prefix-stable,
//	              so the output applies cleanly to a running `mpa watch`
//	              or `mpa serve` with the same seed/networks/months
//
// Flags:
//
//	-seed N        generator seed (default 1)
//	-networks N    number of networks (default 120; paper scale is 850)
//	-months N      study months (default 10, anchored at Aug 2013)
//	-practice M    practice metric for `causal` (default no_change_events)
//	-id ID         experiment id for `experiment`
//	-history N     training history in months for `online` (default 3)
//	-dir PATH      output directory for `export`
//	-network NAME  network for `report`
//	-workers N     worker goroutines per pipeline stage (0 = all CPUs);
//	               results are byte-identical at any worker count
//	-cache         content-addressed caching of pure pipeline stages
//	               (default true; results are identical either way)
//	-cache-dir D   on-disk cache tier; warm re-runs with the same directory
//	               skip all unchanged per-network work
//	-cache-max N   max in-memory cache entries per pipeline stage
//	-addr A        listen address for `serve` (default localhost:8080)
//	-max-inflight N  concurrent query limit for `serve` (0 = 2×GOMAXPROCS)
//	-orgs SPEC     multi-tenant serve: comma-separated
//	               name=seed[:networks[:months]] org specs; unset fields
//	               inherit -networks/-months
//	-orgs-config F multi-tenant serve from a JSON registry file:
//	               {"orgs":[{"name":...,"seed":...,"networks":...,"months":...}]}
//	-slow-ms N     serve queries at least this slow are logged at Warn
//	               with a per-stage breakdown and pinned in the flight
//	               recorder (default 1000; 0 disables)
//	-watch-dir D   directory `watch` polls for update files (*.json,
//	               applied once each in filename order)
//	-poll D        watch poll interval / replay cadence (default 2s)
//	-replay N      `watch` replays N synthetic months, one per -poll tick
//
// Observability flags (shared with mpa-experiments):
//
//	-v, -vv            structured stage logs to stderr (info / debug)
//	-progress          live stage progress line on stderr
//	-cpuprofile FILE   CPU profile (runtime/pprof)
//	-memprofile FILE   heap profile on exit
//	-trace FILE        Chrome trace-event JSON of the pipeline span tree
//	-manifest FILE     run-manifest JSON on exit (build info, config,
//	                   stage rollups, metrics, report digests); compare
//	                   runs with cmd/mpa-benchdiff
//	-debug-addr ADDR   serve /debug/pprof, /debug/vars, and Prometheus
//	                   /metrics over HTTP
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"mpa"
	"mpa/internal/cache"
	"mpa/internal/ingest"
	"mpa/internal/obs"
	"mpa/internal/par"
	"mpa/internal/serve"
	"mpa/internal/tenant"
)

func main() {
	seed := flag.Uint64("seed", 1, "generator seed")
	networks := flag.Int("networks", 120, "number of networks to generate")
	monthsN := flag.Int("months", 10, "study window length in months")
	practice := flag.String("practice", "no_change_events", "practice metric for causal analysis")
	id := flag.String("id", "", "experiment id for the experiment subcommand")
	history := flag.Int("history", 3, "training history (months) for online prediction")
	dir := flag.String("dir", "mpa-export", "output directory for export")
	network := flag.String("network", "", "network name for report")
	workers := flag.Int("workers", 0, "worker goroutines per pipeline stage (0 = all CPUs); results are identical at any count")
	cacheOn := flag.Bool("cache", true, "content-addressed caching of pure pipeline stages; results are identical either way")
	cacheDir := flag.String("cache-dir", "", "on-disk cache tier directory (empty = in-memory only); warm re-runs skip unchanged per-network work")
	cacheMax := flag.Int("cache-max", cache.DefaultMaxEntries, "max in-memory cache entries per pipeline stage")
	addr := flag.String("addr", "localhost:8080", "listen address for the serve subcommand")
	maxInflight := flag.Int("max-inflight", 0, "concurrent query limit for serve (0 = 2×GOMAXPROCS)")
	orgsSpec := flag.String("orgs", "", "multi-tenant serve: comma-separated name=seed[:networks[:months]] org specs")
	orgsConfig := flag.String("orgs-config", "", "multi-tenant serve: JSON registry file ({\"orgs\":[...]})")
	slowMS := flag.Int("slow-ms", 1000, "serve queries at least this slow (milliseconds) are logged at Warn with a per-stage breakdown and pinned in the flight recorder; 0 disables")
	watchDir := flag.String("watch-dir", "", "directory the watch subcommand polls for update files (*.json)")
	poll := flag.Duration("poll", 2*time.Second, "watch poll interval and replay cadence")
	replayN := flag.Int("replay", 0, "synthetic months the watch subcommand replays, one per poll tick")
	var obsFlags obs.Flags
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if *monthsN < 1 {
		fmt.Fprintf(os.Stderr, "mpa: -months must be >= 1 (got %d)\n", *monthsN)
		os.Exit(2)
	}
	if *networks < 1 {
		fmt.Fprintf(os.Stderr, "mpa: -networks must be >= 1 (got %d)\n", *networks)
		os.Exit(2)
	}
	if err := obsFlags.Start(); err != nil {
		fatal(err)
	}
	par.SetDefaultWorkers(*workers)

	if cmd == "experiment" && *id == "" {
		fmt.Println("available experiments:")
		for _, eid := range mpa.ExperimentIDs() {
			fmt.Println("  " + eid)
		}
		return
	}

	cfg := mpa.DefaultConfig(*seed)
	cfg.Networks = *networks
	cfg.Workers = *workers
	cfg.Cache = mpa.CacheConfig{Enabled: *cacheOn, Dir: *cacheDir, MaxEntries: *cacheMax}
	start, _ := mpa.StudyWindow()
	cfg.Start = start
	cfg.End = start.Add(*monthsN - 1)

	// nextmonth only generates the update feed; no framework needed.
	if cmd == "nextmonth" {
		ups, err := mpa.NextMonths(cfg, 1)
		if err != nil {
			fatal(err)
		}
		if err := json.NewEncoder(os.Stdout).Encode(ups[0]); err != nil {
			fatal(err)
		}
		return
	}

	// Multi-tenant serve: an org registry replaces the single synthetic
	// organization — one warm framework per org, sharded by the router.
	if *orgsSpec != "" || *orgsConfig != "" {
		if cmd != "serve" {
			fatal(fmt.Errorf("-orgs/-orgs-config apply only to the serve subcommand"))
		}
		if *orgsSpec != "" && *orgsConfig != "" {
			fatal(fmt.Errorf("use -orgs or -orgs-config, not both"))
		}
		specs, err := tenant.ParseOrgs(*orgsSpec)
		if *orgsConfig != "" {
			specs, err = tenant.ReadConfig(*orgsConfig)
		}
		if err != nil {
			fatal(err)
		}
		obs.Logger().Info("generating fleet", "orgs", len(specs),
			"networks", cfg.Networks, "months", *monthsN)
		reg, err := tenant.Load(specs, cfg)
		if err != nil {
			fatal(err)
		}
		srv := serve.NewSharded(reg, serve.Config{
			Addr:          *addr,
			MaxInFlight:   *maxInflight,
			SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		})
		bound, err := srv.Listen()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mpa: serving %d orgs on http://%s (%s; SIGINT/SIGTERM to stop)\n",
			reg.Len(), bound, strings.Join(reg.Names(), ", "))
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = srv.Serve(ctx)
		stop()
		if err != nil {
			fatal(err)
		}
		return
	}

	obs.Logger().Info("generating organization",
		"networks", cfg.Networks, "months", *monthsN, "seed", cfg.Seed)
	f, err := mpa.NewSynthetic(cfg)
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "summary":
		printExperiment(f, "table2")
	case "rank":
		fmt.Println("Practices by average monthly mutual information with health:")
		for i, e := range f.RankPractices() {
			fmt.Printf("%2d. %-34s (%s)  MI=%.3f\n",
				i+1, mpa.DisplayName(e.Metric), mpa.MetricCategory(e.Metric), e.MI)
		}
	case "causal":
		res, err := f.AnalyzeCausal(*practice)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Causal analysis of %s:\n", mpa.DisplayName(*practice))
		for _, p := range res.Points {
			status := "not significant"
			switch {
			case p.Skipped:
				status = "insufficient cases"
			case !p.Balanced:
				status = "imbalanced matching"
			case p.Causal:
				status = "CAUSAL (p < 0.001)"
			}
			fmt.Printf("  %s: %d pairs, +%d/-%d/=%d, p=%.3g — %s\n",
				p.Comparison, p.Pairs, p.MoreTickets, p.FewerTickets, p.NoEffect, p.PValue, status)
		}
	case "predict":
		for _, g := range []mpa.Granularity{mpa.TwoClass, mpa.FiveClass} {
			model, err := f.TrainHealthModel(g)
			if err != nil {
				fatal(err)
			}
			q := model.Quality()
			fmt.Printf("%d-class model: accuracy %.3f (majority baseline %.3f)\n",
				int(g), q.Accuracy, q.MajorityAccuracy)
			for c, name := range g.ClassNames() {
				fmt.Printf("  %-10s precision %.2f recall %.2f\n", name, q.Precision[c], q.Recall[c])
			}
		}
	case "online":
		for _, g := range []mpa.Granularity{mpa.TwoClass, mpa.FiveClass} {
			preds, err := f.PredictOnline(g, *history)
			if err != nil {
				fatal(err)
			}
			var sum float64
			for _, p := range preds {
				sum += p.Accuracy
			}
			if len(preds) == 0 {
				fmt.Printf("%d-class: window too short for history %d\n", int(g), *history)
				continue
			}
			fmt.Printf("%d-class online accuracy (M=%d): %.3f over %d months\n",
				int(g), *history, sum/float64(len(preds)), len(preds))
		}
	case "characterize":
		for _, eid := range []string{"figure11", "figure12", "figure13"} {
			printExperiment(f, eid)
		}
	case "export":
		if err := f.Save(*dir); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote inventory.json, tickets.csv, and snapshots/ under %s\n", *dir)
	case "report":
		name := *network
		if name == "" {
			name = f.Dataset().Networks()[0]
		}
		out, err := f.NetworkReport(name)
		if err != nil {
			fatal(err)
		}
		fmt.Println(out)
	case "experiment":
		r, ok := f.Experiment(*id)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; run `mpa experiment` for the list", *id))
		}
		fmt.Println(r.Title)
		fmt.Println(strings.Repeat("=", len(r.Title)))
		fmt.Println(r.Text)
	case "serve":
		srv := serve.New(f, serve.Config{
			Addr:          *addr,
			MaxInFlight:   *maxInflight,
			SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		})
		bound, err := srv.Listen()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mpa: serving on http://%s (SIGINT/SIGTERM to stop)\n", bound)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		err = srv.Serve(ctx)
		stop()
		if err != nil {
			fatal(err)
		}
	case "watch":
		srv := serve.New(f, serve.Config{
			Addr:          *addr,
			MaxInFlight:   *maxInflight,
			SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		})
		bound, err := srv.Listen()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("mpa: watching on http://%s (POST /v1/ingest, GET /v1/stream; SIGINT/SIGTERM to stop)\n", bound)
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		var wg sync.WaitGroup
		if *watchDir != "" {
			w := ingest.NewWatcher(*watchDir, *poll, func(path string, u *ingest.Update) error {
				res, err := f.Ingest(u)
				if err != nil {
					return err
				}
				fmt.Printf("mpa: ingested %s from %s: %d snapshots, %d tickets, %d networks\n",
					res.MonthName, filepath.Base(path), res.Snapshots, res.Tickets, len(res.Networks))
				return nil
			})
			fmt.Printf("mpa: polling %s every %s for update files\n", *watchDir, *poll)
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = w.Run(ctx)
			}()
		}
		if *replayN > 0 {
			ups, err := mpa.NextMonths(cfg, *replayN)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("mpa: replaying %d synthetic months, one per %s\n", *replayN, *poll)
			wg.Add(1)
			go func() {
				defer wg.Done()
				tick := time.NewTicker(*poll)
				defer tick.Stop()
				for _, u := range ups {
					select {
					case <-ctx.Done():
						return
					case <-tick.C:
					}
					res, err := f.Ingest(u)
					if err != nil {
						obs.Logger().Error("watch: replay ingest failed", "err", err)
						return
					}
					fmt.Printf("mpa: replayed %s: %d snapshots, %d tickets, %d networks\n",
						res.MonthName, res.Snapshots, res.Tickets, len(res.Networks))
				}
			}()
		}
		err = srv.Serve(ctx)
		stop()
		wg.Wait()
		if err != nil {
			fatal(err)
		}
	case "stats":
		// Exercise the analysis stages beyond generation/inference/dataset
		// (which ran in NewSynthetic), then print the per-stage breakdown.
		_ = f.RankPractices()
		if _, err := f.AnalyzeCausal(*practice); err != nil {
			fatal(err)
		}
		if _, err := f.TrainHealthModel(mpa.TwoClass); err != nil {
			fatal(err)
		}
		fmt.Print(f.PipelineStats().Table())
	default:
		usage()
		os.Exit(2)
	}

	// Record the pipeline's stage roots into the flight recorder: `mpa
	// stats` prints the slowest below, and the run manifest written next
	// snapshots the recorder (internal/runinfo "recorder" section).
	f.RecordStages(obs.DefaultRecorder())
	if cmd == "stats" {
		fmt.Println("\nFlight recorder — slowest stages of this run:")
		for _, s := range obs.DefaultRecorder().Slowest(10) {
			fmt.Printf("  %-28s %12s  %s\n", s.Name, time.Duration(s.DurationNS).Round(10*time.Microsecond), s.ID)
		}
	}

	if obsFlags.ManifestPath != "" {
		m := f.Manifest()
		m.Config.Extra = map[string]string{"command": "mpa " + cmd}
		if err := m.Write(obsFlags.ManifestPath); err != nil {
			fatal(err)
		}
	}
	if err := obsFlags.Stop(f.WriteTrace); err != nil {
		fatal(err)
	}
}

func printExperiment(f *mpa.Framework, id string) {
	r, ok := f.Experiment(id)
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q", id))
	}
	fmt.Println(r.Title)
	fmt.Println(strings.Repeat("=", len(r.Title)))
	fmt.Println(r.Text)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mpa [flags] summary|rank|causal|predict|online|characterize|experiment|export|report|stats|serve|watch|nextmonth")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpa:", err)
	os.Exit(1)
}
