package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpa/internal/loadgen"
)

// stubDaemon mimics the mpa serve surface the load generator touches:
// /healthz for target bootstrap and the /v1 read endpoints. Reports
// other than "table2" 404, giving the error-accounting path real
// failures to count.
func stubDaemon(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"status":"ok","networks":3,"window_start":"2014-01","window_end":"2014-03","months":3}`)
	})
	ok := func(w http.ResponseWriter, _ *http.Request) {
		hits.Add(1)
		fmt.Fprint(w, `{}`)
	}
	mux.HandleFunc("GET /v1/rank", ok)
	mux.HandleFunc("GET /v1/manifest", ok)
	mux.HandleFunc("GET /v1/causal", ok)
	mux.HandleFunc("GET /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !strings.HasPrefix(r.URL.Query().Get("network"), "net00") {
			t.Errorf("predict network = %q, want net00x from the bootstrap", r.URL.Query().Get("network"))
		}
		fmt.Fprint(w, `{}`)
	})
	mux.HandleFunc("GET /v1/network", ok)
	mux.HandleFunc("GET /v1/report/{name}", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if r.PathValue("name") != "table2" {
			http.Error(w, "no such report", http.StatusNotFound)
			return
		}
		fmt.Fprint(w, `{}`)
	})
	return httptest.NewServer(mux)
}

// TestRunEndToEnd drives the full loop against the stub: bootstrap from
// /healthz, execute an open-loop plan, and produce a valid manifest
// whose totals match what the server actually saw.
func TestRunEndToEnd(t *testing.T) {
	var hits atomic.Int64
	srv := stubDaemon(t, &hits)
	defer srv.Close()

	cfg := runConfig{
		addr:      srv.URL,
		rate:      400,
		duration:  500 * time.Millisecond,
		mixSpec:   "rank=3,network=3,predict=2,causal=1,report=1,manifest=1",
		seed:      11,
		conns:     4,
		timeout:   5 * time.Second,
		practices: "no_change_events",
		reports:   "table2,missing_report",
	}
	m, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m.Totals.Requests != hits.Load() {
		t.Errorf("manifest counts %d requests, server saw %d", m.Totals.Requests, hits.Load())
	}
	if m.Totals.Requests < 100 {
		t.Errorf("only %d requests in 500ms at 400/s", m.Totals.Requests)
	}
	for _, ep := range []string{"rank", "network", "predict", "causal", "report", "manifest"} {
		st, ok := m.Endpoints[ep]
		if !ok {
			t.Errorf("endpoint %q missing from manifest", ep)
			continue
		}
		if st.Requests > 0 && st.LatencyMS.P99 <= 0 {
			t.Errorf("endpoint %q has requests but no latency: %+v", ep, st)
		}
	}
	// Half the report draws hit the 404 id: report errors must be
	// recorded without failing the run.
	if rep := m.Endpoints["report"]; rep.Requests > 5 && rep.Errors == 0 {
		t.Errorf("report 404s not counted as errors: %+v", rep)
	}
	if m.Config.Mix != cfg.mixSpec {
		t.Errorf("manifest mix = %q, want %q", m.Config.Mix, cfg.mixSpec)
	}

	// The artifact round-trips through the file format the gate reads.
	path := filepath.Join(t.TempDir(), "load.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := loadgen.Read(path); err != nil {
		t.Fatal(err)
	}
}

// TestRunLatencyIsScheduleAnchored pins coordinated-omission
// resistance: with one connection and a server that stalls 50ms per
// request, requests scheduled close together must report queue-inflated
// latencies far beyond the 50ms service time.
func TestRunLatencyIsScheduleAnchored(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"status":"ok","networks":1,"window_start":"2014-01","window_end":"2014-01","months":1}`)
	})
	mux.HandleFunc("GET /v1/rank", func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(50 * time.Millisecond)
		fmt.Fprint(w, `{}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	m, err := run(runConfig{
		addr:     srv.URL,
		rate:     100, // 100/s into a 20/s server: the backlog must show
		duration: 300 * time.Millisecond,
		mixSpec:  "rank=1",
		seed:     3,
		conns:    1,
		timeout:  10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rank := m.Endpoints["rank"]
	if rank.Requests < 10 {
		t.Fatalf("only %d requests planned", rank.Requests)
	}
	// A closed-loop (send-when-free) measurement would report ~50ms
	// regardless of backlog; schedule-anchored latency must blow past it.
	if rank.LatencyMS.Max < 150 {
		t.Errorf("max latency %.1fms does not reflect the queue (closed-loop would report ≈50ms)",
			rank.LatencyMS.Max)
	}
	if rank.LatencyMS.P50 <= rank.LatencyMS.Min {
		t.Errorf("latency summary suspicious under saturation: %+v", rank.LatencyMS)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := run(runConfig{addr: "http://127.0.0.1:1", rate: 1, duration: time.Second,
		mixSpec: "rank=1", conns: 1, timeout: 100 * time.Millisecond}); err == nil {
		t.Error("unreachable daemon accepted")
	}
	if _, err := run(runConfig{addr: "http://x", rate: 1, duration: time.Second,
		mixSpec: "bogus", conns: 1}); err == nil {
		t.Error("bad mix accepted")
	}
	if _, err := run(runConfig{addr: "http://x", rate: 1, duration: time.Second,
		mixSpec: "rank=1", conns: 0}); err == nil {
		t.Error("zero conns accepted")
	}
}
