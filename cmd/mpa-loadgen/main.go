// Command mpa-loadgen drives deterministic open-loop load against a
// running `mpa serve` daemon and writes an mpa.load-manifest/v1 JSON
// artifact (per-endpoint throughput, error rates, latency percentiles,
// build provenance) that cmd/mpa-slogate gates in CI.
//
// Usage:
//
//	mpa-loadgen [-addr URL] [-rate N] [-duration D] [-mix SPEC]
//	            [-seed N] [-conns N] [-timeout D] [-out FILE]
//	            [-practices LIST] [-reports LIST] [-orgs LIST]
//
// The request schedule is open-loop: arrival times are drawn up front
// from a seeded exponential (Poisson) process at -rate req/s, and each
// request's latency is measured from its *scheduled* arrival time —
// not from when a connection got around to sending it — so a stalled
// server shows up in p99 instead of silently pausing the load
// (coordinated-omission resistance; see internal/loadgen). The same
// seed against the same daemon state replays the identical request
// sequence.
//
// Targets are bootstrapped from the daemon's /healthz: generated
// networks are named net000…netN−1 and the study window is contiguous,
// so the network count plus window bounds reconstruct every valid
// /v1/network and /v1/predict parameter. Practices and report IDs come
// from -practices/-reports.
//
// Against a multi-tenant daemon (`mpa serve -orgs`), pass the same org
// names via -orgs: each request draws its tenant uniformly and carries
// it in the X-MPA-Org header, and each org's target pools are
// bootstrapped from its own /healthz. Accounting stays per endpoint
// across tenants, so the manifest gates against the same SLO baseline
// as a single-tenant run.
//
// Exit status: 0 on a completed run (errors are recorded in the
// manifest, not fatal), 1 on bad usage, an unreachable daemon, or a
// manifest write failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"mpa/internal/loadgen"
	"mpa/internal/report"
)

func main() {
	var cfg runConfig
	flag.StringVar(&cfg.addr, "addr", "http://localhost:8080", "base URL of the mpa serve daemon")
	flag.Float64Var(&cfg.rate, "rate", 50, "open-loop arrival rate in requests/second")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "load duration")
	flag.StringVar(&cfg.mixSpec, "mix", loadgen.DefaultMix, "endpoint mix as endpoint=weight[,endpoint=weight...]")
	flag.Uint64Var(&cfg.seed, "seed", 1, "schedule seed; same seed replays the same request sequence")
	flag.IntVar(&cfg.conns, "conns", 8, "concurrent client connections (workers)")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request timeout; timeouts count as errors")
	flag.StringVar(&cfg.out, "out", "load-manifest.json", "load-manifest output path")
	flag.StringVar(&cfg.practices, "practices", "no_change_events", "comma-separated practice metrics for /v1/causal")
	flag.StringVar(&cfg.reports, "reports", "table2,table3", "comma-separated experiment IDs for /v1/report")
	flag.StringVar(&cfg.orgs, "orgs", "", "comma-separated org names of a multi-tenant daemon (sent as X-MPA-Org)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: mpa-loadgen [flags] (see -h)")
		os.Exit(1)
	}

	m, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpa-loadgen:", err)
		os.Exit(1)
	}
	if err := m.Write(cfg.out); err != nil {
		fmt.Fprintln(os.Stderr, "mpa-loadgen:", err)
		os.Exit(1)
	}
	fmt.Print(render(m))
	fmt.Printf("\nwrote %s (%d requests, %.1f req/s achieved, %.2f%% errors)\n",
		cfg.out, m.Totals.Requests, m.Totals.AchievedRPS, m.Totals.ErrorRate*100)
}

type runConfig struct {
	addr      string
	rate      float64
	duration  time.Duration
	mixSpec   string
	seed      uint64
	conns     int
	timeout   time.Duration
	out       string
	practices string
	reports   string
	orgs      string
}

// run bootstraps targets, executes the plan, and builds the manifest.
func run(cfg runConfig) (*loadgen.Manifest, error) {
	if cfg.conns <= 0 {
		return nil, fmt.Errorf("conns = %d, want > 0", cfg.conns)
	}
	mix, err := loadgen.ParseMix(cfg.mixSpec)
	if err != nil {
		return nil, err
	}
	base := strings.TrimSuffix(cfg.addr, "/")
	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.conns,
			MaxIdleConnsPerHost: cfg.conns,
		},
	}
	orgs := splitList(cfg.orgs)
	tenants := make([]loadgen.OrgTargets, 0, len(orgs)+1)
	if len(orgs) == 0 {
		targets, err := bootstrap(client, base, "", cfg)
		if err != nil {
			return nil, err
		}
		tenants = append(tenants, loadgen.OrgTargets{Targets: targets})
	}
	for _, org := range orgs {
		targets, err := bootstrap(client, base, org, cfg)
		if err != nil {
			return nil, fmt.Errorf("org %s: %w", org, err)
		}
		tenants = append(tenants, loadgen.OrgTargets{Org: org, Targets: targets})
	}
	plan, err := loadgen.BuildPlanTenants(cfg.rate, cfg.duration, cfg.seed, mix, tenants)
	if err != nil {
		return nil, err
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("empty plan: rate %v over %v schedules no arrivals", cfg.rate, cfg.duration)
	}

	col := loadgen.NewCollector()
	// Full-plan buffering keeps the dispatcher from ever blocking on
	// saturated workers — blocking would couple the arrival process to
	// server speed, which is exactly the coordinated omission the
	// scheduled-time latency accounting exists to prevent.
	jobs := make(chan loadgen.Request, len(plan))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range jobs {
				scheduled := start.Add(req.At)
				failed := false
				hr, err := http.NewRequest(http.MethodGet, base+req.Path, nil)
				if err != nil {
					col.Record(req.Endpoint, time.Since(scheduled), true)
					continue
				}
				if req.Org != "" {
					hr.Header.Set("X-MPA-Org", req.Org)
				}
				resp, err := client.Do(hr)
				if err != nil {
					failed = true
				} else {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					failed = resp.StatusCode >= 400
				}
				col.Record(req.Endpoint, time.Since(scheduled), failed)
			}
		}()
	}
	for _, req := range plan {
		time.Sleep(time.Until(start.Add(req.At)))
		jobs <- req
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	return col.Manifest(base, loadgen.Config{
		Rate:            cfg.rate,
		DurationSeconds: cfg.duration.Seconds(),
		Seed:            cfg.seed,
		Conns:           cfg.conns,
		Mix:             mix.String(),
		Orgs:            strings.Join(orgs, ","),
	}, elapsed, time.Now().UTC()), nil
}

// healthz mirrors the fields of GET /healthz the bootstrap needs.
type healthz struct {
	Status      string `json:"status"`
	Networks    int    `json:"networks"`
	WindowStart string `json:"window_start"`
	Months      int    `json:"months"`
}

// bootstrap derives the target pools from the daemon's /healthz — one
// org's view of it when org is non-empty.
func bootstrap(client *http.Client, base, org string, cfg runConfig) (loadgen.Targets, error) {
	hr, err := http.NewRequest(http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return loadgen.Targets{}, err
	}
	if org != "" {
		hr.Header.Set("X-MPA-Org", org)
	}
	resp, err := client.Do(hr)
	if err != nil {
		return loadgen.Targets{}, fmt.Errorf("daemon unreachable: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return loadgen.Targets{}, fmt.Errorf("/healthz status %d", resp.StatusCode)
	}
	var h healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return loadgen.Targets{}, fmt.Errorf("/healthz decode: %w", err)
	}
	if h.Status != "ok" || h.Networks <= 0 || h.Months <= 0 {
		return loadgen.Targets{}, fmt.Errorf("/healthz reports %+v, want ok with networks and months", h)
	}
	start, err := time.Parse("2006-01", h.WindowStart)
	if err != nil {
		return loadgen.Targets{}, fmt.Errorf("/healthz window_start %q: %w", h.WindowStart, err)
	}
	t := loadgen.Targets{
		Practices: splitList(cfg.practices),
		Reports:   splitList(cfg.reports),
	}
	for i := 0; i < h.Networks; i++ {
		t.Networks = append(t.Networks, fmt.Sprintf("net%03d", i))
	}
	for i := 0; i < h.Months; i++ {
		t.Months = append(t.Months, start.AddDate(0, i, 0).Format("2006-01"))
	}
	return t, nil
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// render draws the per-endpoint summary table.
func render(m *loadgen.Manifest) string {
	names := make([]string, 0, len(m.Endpoints))
	for name := range m.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	tb := report.NewTable("Endpoint", "Requests", "Err%", "req/s", "p50 ms", "p90 ms", "p99 ms", "p99.9 ms", "max ms")
	for _, name := range names {
		ep := m.Endpoints[name]
		l := ep.LatencyMS
		tb.AddRow(name,
			fmt.Sprintf("%d", ep.Requests),
			fmt.Sprintf("%.2f", ep.ErrorRate*100),
			fmt.Sprintf("%.1f", ep.ThroughputRPS),
			fmt.Sprintf("%.2f", l.P50), fmt.Sprintf("%.2f", l.P90),
			fmt.Sprintf("%.2f", l.P99), fmt.Sprintf("%.2f", l.P999),
			fmt.Sprintf("%.2f", l.Max))
	}
	return tb.String()
}
