package mpa

import (
	"mpa/internal/dataio"
)

// DefaultAutomationAccounts are the logins the synthetic OSP's NMS
// classifies as automation accounts. Organizations loading their own data
// pass their real service-account names to LoadOrganization.
var DefaultAutomationAccounts = []string{"svc-netauto", "rancid-bot", "svc-lbsync"}

// Save writes the framework's raw data sources to dir in open formats:
// inventory.json, tickets.csv, and a RANCID-style snapshots/ tree. The
// layout round-trips through LoadOrganization, so a synthetic organization
// can be exported once and analyzed repeatedly (or inspected by hand).
func (f *Framework) Save(dir string) error {
	o := f.environment().OSP // one snapshot: inventory/archive/tickets stay consistent
	return dataio.SaveOrganization(dir, o.Inventory, o.Archive, o.Tickets)
}

// LoadOrganization reads an organization's data from dir (the layout
// Save writes: inventory.json, tickets.csv, snapshots/<device>/*.cfg) and
// runs the inference pipeline over [start, end]. specialAccounts lists the
// logins whose changes count as automated; nil uses
// DefaultAutomationAccounts.
func LoadOrganization(dir string, specialAccounts []string, start, end Month) (*Framework, error) {
	if specialAccounts == nil {
		specialAccounts = DefaultAutomationAccounts
	}
	inv, arch, tickets, err := dataio.LoadOrganization(dir, specialAccounts)
	if err != nil {
		return nil, err
	}
	return New(inv, arch, tickets, start, end)
}
