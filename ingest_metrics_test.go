package mpa

// Failure-path metrics for streaming ingest: an update that passes
// validation but fails during apply (here: a snapshot whose config text
// the dialect parser rejects, surfacing through incremental inference)
// must count in ingest.rejected and observe ingest.apply_ms like any
// other finished apply — the regression was that only compile/window
// rejects were counted, silently undercounting failed applies.

import (
	"strings"
	"testing"

	"mpa/internal/ingest"
	"mpa/internal/obs"
	"mpa/internal/osp"
)

func TestIngestApplyFailureCounted(t *testing.T) {
	p := spliceParams()
	p.Networks = 4
	o := osp.Generate(p)
	f, err := NewCached(o.Inventory, o.Archive, o.Tickets, p.Start, p.End, CacheConfig{})
	if err != nil {
		t.Fatal(err)
	}
	envBefore := f.environment()

	rejected := obs.GetCounter("ingest.rejected")
	rejectedBefore := rejected.Value()
	applyBefore := obs.GetHistogram("ingest.apply_ms").Snapshot().Count

	// Compile checks months, device identity, and monotonicity — not the
	// config text itself. Unparseable text therefore survives validation
	// and fails inside incremental inference, the apply path under test.
	dev := o.Inventory.Networks[0].Devices[0].Name
	next := p.End.Next()
	u := &IngestUpdate{
		Month: next.String(),
		Snapshots: []ingest.SnapshotEntry{
			{Device: dev, Time: next.Start(), Login: "ops", Text: "%% not a config\n"},
		},
	}
	_, err = f.Ingest(u)
	if err == nil {
		t.Fatal("unparseable snapshot applied cleanly, want an inference failure")
	}
	if !strings.Contains(err.Error(), "incremental inference failed") {
		t.Fatalf("err = %v, want the incremental-inference failure path", err)
	}

	if d := rejected.Value() - rejectedBefore; d != 1 {
		t.Errorf("ingest.rejected grew by %d, want 1", d)
	}
	if d := obs.GetHistogram("ingest.apply_ms").Snapshot().Count - applyBefore; d != 1 {
		t.Errorf("ingest.apply_ms observed %d new applies, want 1 (failed applies must not vanish from the latency series)", d)
	}
	if f.environment() != envBefore {
		t.Error("failed apply swapped the environment")
	}

	// A plain validation reject still counts without an apply_ms sample:
	// no apply work ran.
	rejectedBefore = rejected.Value()
	applyBefore = obs.GetHistogram("ingest.apply_ms").Snapshot().Count
	if _, err := f.Ingest(&IngestUpdate{Month: next.String()}); err == nil {
		t.Fatal("empty update accepted")
	}
	if d := rejected.Value() - rejectedBefore; d != 1 {
		t.Errorf("validation reject: ingest.rejected grew by %d, want 1", d)
	}
	if d := obs.GetHistogram("ingest.apply_ms").Snapshot().Count - applyBefore; d != 0 {
		t.Errorf("validation reject observed %d apply_ms samples, want 0", d)
	}
}
